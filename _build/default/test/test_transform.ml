(** Transformation tests: the SPT loop transformation must preserve
    program semantics on a corpus covering plain motion, conditional
    regions, exit-guard chains (unrolled loops), SVP rewrites and the
    unroller — plus structural checks (fork placement, kill insertion,
    coalescing pairs). *)

open Spt_ir
open Spt_transform
module Iset = Set.Make (Int)

let compile src = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src)

let run prog = (Spt_interp.Interp.run prog).Spt_interp.Interp.output

(* transform every feasible loop of main with its optimal partition and
   check semantic equivalence; returns how many loops were transformed *)
let transform_all ?(unroll = false) src =
  let reference = run (compile src) in
  let prog = compile src in
  if unroll then
    List.iter
      (fun (_, f) -> ignore (Unroll.run f Unroll.default_policy))
      prog.Ir.funcs;
  List.iter
    (fun (_, f) ->
      Ssa.construct f;
      Passes.optimize_ssa f)
    prog.Ir.funcs;
  let eff = Spt_depgraph.Effects.compute prog in
  let transformed = ref 0 in
  let coalesce : (string, (int * Ir.var) list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (name, f) ->
      List.iter
        (fun l ->
          let g = Spt_depgraph.Depgraph.build eff f l in
          let cm = Spt_cost.Cost_model.build g in
          match Spt_partition.Partition.search cm g with
          | Spt_partition.Partition.Found r -> (
            match
              Spt_transform_loop.apply f g
                ~prefork:
                  (Spt_partition.Partition.Iset.fold Iset.add
                     r.Spt_partition.Partition.prefork Iset.empty)
                ~loop_id:!transformed
            with
            | Ok info ->
              incr transformed;
              Hashtbl.replace coalesce name
                (info.Spt_transform_loop.coalesce
                @ Option.value ~default:[] (Hashtbl.find_opt coalesce name))
            | Error _ -> ())
          | Spt_partition.Partition.Too_many_vcs _ -> ())
        (* innermost loops only: they are pairwise disjoint, so earlier
           transforms leave later graphs valid *)
        (Loops.innermost (Loops.find f)))
    prog.Ir.funcs;
  List.iter
    (fun (name, f) ->
      let pairs = Option.value ~default:[] (Hashtbl.find_opt coalesce name) in
      Ssa.destruct ~phi_primed:(fun vid -> List.assoc_opt vid pairs) f;
      Passes.optimize_nonssa f)
    prog.Ir.funcs;
  let out = run prog in
  Alcotest.(check string) "semantics preserved" reference out;
  !transformed

let test_plain_motion () =
  let n =
    transform_all
      {|
int n = 50;
int a[50];
int b[50];
void main() {
  int i = 0;
  int s = 0;
  while (i < n) {
    a[i] = b[i] * 3 + 1;
    s = s + a[i];
    i = i + 1;
  }
  print_int(s);
}
|}
  in
  Alcotest.(check bool) "transformed the loop" true (n >= 1)

let test_conditional_region () =
  let n =
    transform_all
      {|
int n = 60;
int a[60];
void main() {
  int i;
  int best = -100;
  int flips = 0;
  srand(9);
  for (i = 0; i < n; i = i + 1) { a[i] = (rand() & 255) - 128; }
  for (i = 0; i < n; i = i + 1) {
    if (a[i] > best) { best = a[i]; flips = flips + 1; }
  }
  print_int(best * 1000 + flips);
}
|}
  in
  Alcotest.(check bool) "conditional loop handled" true (n >= 1)

let test_guard_chains_unrolled () =
  let n =
    transform_all ~unroll:true
      {|
int n = 100;
int a[100];
int b[100];
void main() {
  int i;
  int s = 0;
  for (i = 0; i < n; i = i + 1) { b[i] = i * 7; }
  for (i = 0; i < n; i = i + 1) {
    a[i] = b[i] + 1;
    if (a[i] > 50) { s = s + 1; }
  }
  print_int(s);
}
|}
  in
  Alcotest.(check bool) "unrolled loops transformed" true (n >= 1)

let test_do_while_and_nested () =
  ignore
    (transform_all
       {|
int n = 30;
int a[30];
void main() {
  int i = 0;
  do {
    int j = 0;
    while (j < 4) { a[(i + j) % 30] = i + j; j = j + 1; }
    i = i + 1;
  } while (i < n);
  print_int(a[7] + a[29]);
}
|})

let test_break_and_calls () =
  ignore
    (transform_all
       {|
int n = 80;
int a[80];
int f(int x) { return x * x % 97; }
void main() {
  int i = 0;
  int s = 0;
  while (i < n) {
    a[i] = f(i);
    s = s + a[i];
    if (s > 2000) { break; }
    i = i + 1;
  }
  print_int(s + i);
}
|})

(* structural checks on one transformed loop *)
let test_structure () =
  let src =
    {|
int n = 50;
int a[50];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = i * 2;
    i = i + 1;
  }
  print_int(a[49]);
}
|}
  in
  let prog = compile src in
  let f = Ir.func_of_program prog "main" in
  Ssa.construct f;
  Passes.optimize_ssa f;
  let eff = Spt_depgraph.Effects.compute prog in
  let l = List.hd (Loops.find f) in
  let g = Spt_depgraph.Depgraph.build eff f l in
  let cm = Spt_cost.Cost_model.build g in
  match Spt_partition.Partition.search cm g with
  | Spt_partition.Partition.Too_many_vcs _ -> Alcotest.fail "unexpected"
  | Spt_partition.Partition.Found r -> (
    match
      Spt_transform_loop.apply f g
        ~prefork:
          (Spt_partition.Partition.Iset.fold Iset.add
             r.Spt_partition.Partition.prefork Iset.empty)
        ~loop_id:7
    with
    | Error rej -> Alcotest.fail (Spt_transform_loop.string_of_reject rej)
    | Ok info ->
      (* exactly one fork with the right id, in the fork block *)
      let forks =
        List.concat_map
          (fun bid ->
            List.filter_map
              (fun (i : Ir.instr) ->
                match i.Ir.kind with
                | Ir.Spt_fork id -> Some (bid, id)
                | _ -> None)
              (Ir.block f bid).Ir.instrs)
          (Ir.block_ids f)
      in
      Alcotest.(check (list (pair int int)))
        "one fork in the fork block"
        [ (info.Spt_transform_loop.fork_block, 7) ]
        forks;
      (* at least one kill, outside the loop body *)
      let kills =
        List.concat_map
          (fun bid ->
            List.filter_map
              (fun (i : Ir.instr) ->
                match i.Ir.kind with Ir.Spt_kill 7 -> Some bid | _ -> None)
              (Ir.block f bid).Ir.instrs)
          (Ir.block_ids f)
      in
      Alcotest.(check bool) "kill inserted" true (kills <> []);
      (* the loop survives with the same header, containing the fork *)
      let loops = Loops.find f in
      let l' =
        List.find (fun l -> l.Loops.header = info.Spt_transform_loop.header) loops
      in
      Alcotest.(check bool) "fork block inside loop" true
        (Loops.Iset.mem info.Spt_transform_loop.fork_block l'.Loops.body);
      (* moved statements imply coalescing pairs for carried defs *)
      Alcotest.(check bool) "induction coalesced" true
        (info.Spt_transform_loop.coalesce <> []))

let test_unroll_semantics () =
  let srcs =
    [
      (* for loop with remainder *)
      "int n = 13; int a[13]; void main() { int i; int s = 0; for (i = 0; i < n; i = i + 1) { a[i] = i; s = s + a[i]; } print_int(s); }";
      (* while loop (only unrolled with unroll_while) *)
      "int n = 29; void main() { int i = 0; int s = 0; while (i < n) { s = s + i * i; i = i + 1; } print_int(s); }";
      (* loop with break *)
      "int n = 40; void main() { int i = 0; int s = 0; while (i < n) { s = s + i; if (s > 100) { break; } i = i + 1; } print_int(s + i); }";
      (* nested *)
      "void main() { int i; int j; int s = 0; for (i = 0; i < 9; i = i + 1) { for (j = 0; j < 7; j = j + 1) { s = s + i * j; } } print_int(s); }";
    ]
  in
  List.iter
    (fun src ->
      let reference = run (compile src) in
      List.iter
        (fun unroll_while ->
          let prog = compile src in
          let policy =
            { Unroll.min_body_size = 200; max_factor = 4; unroll_while }
          in
          List.iter (fun (_, f) -> ignore (Unroll.run f policy)) prog.Ir.funcs;
          Alcotest.(check string) "unrolled semantics" reference (run prog))
        [ false; true ])
    srcs

let test_unroll_policy () =
  (* DO loops unroll by default; while loops only with unroll_while *)
  let src =
    "int n = 64; void main() { int i = 0; while (i < n) { i = i + 1; } print_int(i); }"
  in
  let count_blocks prog =
    List.length (Ir.block_ids (Ir.func_of_program prog "main"))
  in
  let p1 = compile src in
  List.iter (fun (_, f) -> ignore (Unroll.run f Unroll.default_policy)) p1.Ir.funcs;
  let p2 = compile src in
  List.iter
    (fun (_, f) ->
      ignore (Unroll.run f { Unroll.default_policy with Unroll.unroll_while = true }))
    p2.Ir.funcs;
  Alcotest.(check bool) "while untouched by default" true
    (count_blocks p1 < count_blocks p2)

let test_svp_rewrite_semantics () =
  let src =
    {|
int n = 200;
int a[200];
void main() {
  int i = 0;
  int x = 0;
  while (i < n) {
    a[i] = x;
    x = x + 3;
    i = i + 1;
  }
  print_int(x + a[199]);
}
|}
  in
  let reference = run (compile src) in
  let prog = compile src in
  List.iter
    (fun (_, f) ->
      Ssa.construct f;
      Passes.optimize_ssa f)
    prog.Ir.funcs;
  let f = Ir.func_of_program prog "main" in
  let l = List.hd (Loops.find f) in
  let applied =
    List.filter_map
      (fun (phi_iid, _) -> Svp.apply f l ~phi_iid ~stride:3L)
      (Svp.candidates f l)
  in
  Alcotest.(check bool) "svp applied to carried ints" true (List.length applied >= 1);
  List.iter
    (fun (_, fn) ->
      Ssa.destruct ~phi_primed:(Svp.phi_primed applied) fn;
      Passes.optimize_nonssa fn)
    prog.Ir.funcs;
  Alcotest.(check string) "SVP semantics (correct stride)" reference (run prog)

let test_svp_wrong_stride_still_correct () =
  (* prediction misses every time; recovery must keep semantics *)
  let src =
    {|
int n = 100;
void main() {
  int i = 0;
  int x = 1;
  while (i < n) {
    x = (x * 5 + 1) & 4095;
    i = i + 1;
  }
  print_int(x);
}
|}
  in
  let reference = run (compile src) in
  let prog = compile src in
  List.iter
    (fun (_, f) ->
      Ssa.construct f;
      Passes.optimize_ssa f)
    prog.Ir.funcs;
  let f = Ir.func_of_program prog "main" in
  let l = List.hd (Loops.find f) in
  let applied =
    List.filter_map
      (fun (phi_iid, _) -> Svp.apply f l ~phi_iid ~stride:42L)
      (Svp.candidates f l)
  in
  Alcotest.(check bool) "applied" true (applied <> []);
  List.iter
    (fun (_, fn) ->
      Ssa.destruct ~phi_primed:(Svp.phi_primed applied) fn;
      Passes.optimize_nonssa fn)
    prog.Ir.funcs;
  Alcotest.(check string) "SVP semantics (wrong stride)" reference (run prog)

(* random loop programs through partition+transform end to end *)
let gen_loop_program =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map string_of_int (int_range 0 9);
        oneofl [ "x"; "y"; "i" ];
        map (fun k -> Printf.sprintf "a[(i + %d) %% 16]" k) (int_range 0 15);
      ]
  in
  let expr =
    atom >>= fun l ->
    atom >>= fun r ->
    oneofl [ "+"; "-"; "*"; "&"; "^" ] >>= fun op ->
    return (Printf.sprintf "(%s %s %s)" l op r)
  in
  let stmt =
    expr >>= fun e ->
    oneof
      [
        (oneofl [ "x"; "y" ] >>= fun v -> return (Printf.sprintf "%s = %s;" v e));
        (int_range 0 15 >>= fun k -> return (Printf.sprintf "a[(i * 3 + %d) %% 16] = %s;" k e));
        (expr >>= fun c -> return (Printf.sprintf "if (%s) { y = %s; }" c e));
      ]
  in
  list_size (int_range 2 8) stmt >>= fun body ->
  int_range 3 20 >>= fun trip ->
  return
    (Printf.sprintf
       {|
int a[16];
void main() {
  int i = 0;
  int x = 1;
  int y = 2;
  while (i < %d) {
    %s
    i = i + 1;
  }
  print_int(x + y * 5 + a[3] + a[11] * 9 + i);
}
|}
       trip
       (String.concat "\n    " body))

let prop_transform_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"SPT transform preserves semantics (random loops)"
    (QCheck.make ~print:(fun s -> s) gen_loop_program)
    (fun src ->
      ignore (transform_all src);
      true)

let suite =
  [
    Alcotest.test_case "plain motion" `Quick test_plain_motion;
    Alcotest.test_case "conditional region" `Quick test_conditional_region;
    Alcotest.test_case "guard chains (unrolled)" `Quick test_guard_chains_unrolled;
    Alcotest.test_case "do-while and nested" `Quick test_do_while_and_nested;
    Alcotest.test_case "break and calls" `Quick test_break_and_calls;
    Alcotest.test_case "fork/kill structure" `Quick test_structure;
    Alcotest.test_case "unroll semantics" `Quick test_unroll_semantics;
    Alcotest.test_case "unroll policy" `Quick test_unroll_policy;
    Alcotest.test_case "SVP rewrite (correct stride)" `Quick test_svp_rewrite_semantics;
    Alcotest.test_case "SVP rewrite (wrong stride)" `Quick test_svp_wrong_stride_still_correct;
    QCheck_alcotest.to_alcotest prop_transform_preserves_semantics;
  ]
