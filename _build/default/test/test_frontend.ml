(** Tests for the MiniC front end: lexer, parser, type checker and the
    pretty-printer round-trip. *)

open Spt_srclang

let lex_kinds src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 6 (List.length (lex_kinds "int x = 42;"));
  (match lex_kinds "0x10 3.5 2.5e2" with
  | [ Lexer.INT_LIT 16L; Lexer.FLOAT_LIT 3.5; Lexer.FLOAT_LIT 250.0; Lexer.EOF ]
    -> ()
  | _ -> Alcotest.fail "unexpected number lexing");
  match lex_kinds "a<=b >> c && !d" with
  | [ Lexer.IDENT "a"; Lexer.LE; Lexer.IDENT "b"; Lexer.SHR; Lexer.IDENT "c";
      Lexer.AMPAMP; Lexer.BANG; Lexer.IDENT "d"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_comments () =
  match lex_kinds "x /* multi \n line */ y // eol\n z" with
  | [ Lexer.IDENT "x"; Lexer.IDENT "y"; Lexer.IDENT "z"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comments skipped"

let test_lexer_error () =
  match Lexer.tokenize "int @" with
  | exception Lexer.Lex_error (_, loc) ->
    Alcotest.(check int) "error column" 5 loc.Ast.col
  | _ -> Alcotest.fail "expected lex error"

let parse src = Parser.parse_program src

let test_parser_precedence () =
  let p = parse "void main() { int x = 1 + 2 * 3 < 7 & 1; }" in
  match (List.hd p.Ast.funcs).Ast.fbody with
  | [ { Ast.sdesc = Ast.Decl (Ast.Tint, "x", Some e); _ } ] ->
    (* ((1 + (2*3)) < 7) & 1 *)
    let str = Format.asprintf "%a" Src_pretty.pp_expr e in
    Alcotest.(check string) "precedence" "(((1 + (2 * 3)) < 7) & 1)" str
  | _ -> Alcotest.fail "unexpected parse"

let test_parser_dangling_else () =
  let p = parse "void main() { if (1) if (2) return; else return; }" in
  match (List.hd p.Ast.funcs).Ast.fbody with
  | [ { Ast.sdesc = Ast.If (_, [ { Ast.sdesc = Ast.If (_, _, inner_else); _ } ], outer_else); _ } ] ->
    Alcotest.(check int) "else binds to inner if" 1 (List.length inner_else);
    Alcotest.(check int) "outer if has no else" 0 (List.length outer_else)
  | _ -> Alcotest.fail "unexpected dangling-else parse"

let test_parser_for_sugar () =
  let p = parse "void main() { int i; for (i = 0; i < 3; i++) { } }" in
  match (List.hd p.Ast.funcs).Ast.fbody with
  | [ _decl; { Ast.sdesc = Ast.For (Some _, Some _, Some step, _); _ } ] -> (
    match step.Ast.sdesc with
    | Ast.Assign (Ast.Lvar "i", { Ast.edesc = Ast.Binary (Ast.Add, _, _); _ }) -> ()
    | _ -> Alcotest.fail "i++ should desugar to i = i + 1")
  | _ -> Alcotest.fail "unexpected for parse"

let test_parser_globals () =
  let p = parse "int a[4] = {1, -2, 3}; float f; int g = 7; void main() { }" in
  match p.Ast.globals with
  | [ Ast.Garray (Ast.Tint, "a", 4, Some [ 1L; -2L; 3L ]);
      Ast.Gscalar (Ast.Tfloat, "f", None);
      Ast.Gscalar (Ast.Tint, "g", Some _) ] -> ()
  | _ -> Alcotest.fail "unexpected globals"

let test_parser_error () =
  match parse "void main() { int = 3; }" with
  | exception Parser.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected parse error"

let typecheck_ok src = ignore (Typecheck.parse_and_check src)

let typecheck_fails src =
  match Typecheck.parse_and_check src with
  | exception Typecheck.Type_error (_, _) -> ()
  | _ -> Alcotest.fail ("expected type error in: " ^ src)

let test_typecheck_accepts () =
  typecheck_ok
    {|
int g;
float fs;
int arr[10];
int helper(int x, int a[]) { return x + a[0]; }
void main() {
  int i = 0;
  float f = 1.5;
  while (i < 10) { arr[i] = helper(i, arr); i = i + 1; }
  fs = f * 2.0;
  g = i;
}
|}

let test_typecheck_rejects () =
  typecheck_fails "void main() { x = 1; }";
  typecheck_fails "void main() { int x = 1.5; }";
  typecheck_fails "void main() { int x = 1 + 2.0; }";
  typecheck_fails "int a[3]; void main() { a = 1; }";
  typecheck_fails "void main() { break; }";
  typecheck_fails "int f() { return; } void main() { }";
  typecheck_fails "void main() { int x = 1; int x = 2; }";
  typecheck_fails "int f(int x) { return x; } void main() { f(1, 2); }";
  typecheck_fails "void f() { } void f() { } void main() { }";
  typecheck_fails "int g; int g; void main() { }";
  typecheck_fails "void nomain() { }"

let test_typecheck_array_args () =
  typecheck_ok
    "int a[4]; int f(int b[]) { return b[0]; } void main() { int x = f(a); }";
  typecheck_fails
    "float a[4]; int f(int b[]) { return b[0]; } void main() { int x = f(a); }";
  typecheck_fails "int f(int b[]) { return b[0]; } void main() { int x = f(1); }"

(* pretty-printer round trip on a fixed, feature-rich program *)
let test_roundtrip () =
  let src =
    {|
int n = 64;
int a[64];
float acc;

int step(int x, int y) { return (x * 3 + y) % 17; }

void main() {
  int i;
  float f = 0.0;
  for (i = 0; i < n; i = i + 1) { a[i] = step(i, i + 1); }
  i = 0;
  while (i < n && a[i] >= 0) {
    if (a[i] > 8) { f = f + 1.0; } else { f = f - 0.5; }
    i = i + 1;
  }
  do { i = i - 2; } while (i > 0);
  acc = f;
  print_float(f);
}
|}
  in
  let p1 = Typecheck.parse_and_check src in
  let printed = Src_pretty.to_string p1 in
  let p2 = Parser.parse_program printed in
  let printed2 = Src_pretty.to_string p2 in
  Alcotest.(check string) "pretty fixpoint" printed printed2

(* qcheck: random expressions round-trip through the printer/parser *)
let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Ast.mk_expr (Ast.Int_lit (Int64.of_int i))) (int_range 0 100);
                return (Ast.mk_expr (Ast.Var "x"));
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2
                  (fun op (l, r) -> Ast.mk_expr (Ast.Binary (op, l, r)))
                  (oneofl
                     [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Lt; Ast.Eq; Ast.Band; Ast.Shl ])
                  (pair sub sub);
                map (fun e -> Ast.mk_expr (Ast.Unary (Ast.Neg, e))) sub;
                map (fun e -> Ast.mk_expr (Ast.Unary (Ast.Bnot, e))) sub;
              ])
        n)

let rec expr_equal (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.edesc, b.Ast.edesc) with
  | Ast.Int_lit x, Ast.Int_lit y -> x = y
  | Ast.Var x, Ast.Var y -> x = y
  | Ast.Unary (o1, e1), Ast.Unary (o2, e2) -> o1 = o2 && expr_equal e1 e2
  | Ast.Binary (o1, l1, r1), Ast.Binary (o2, l2, r2) ->
    o1 = o2 && expr_equal l1 l2 && expr_equal r1 r2
  | _ -> false

let prop_expr_roundtrip =
  QCheck.Test.make ~count:200 ~name:"expression print/parse round-trip"
    (QCheck.make ~print:(Format.asprintf "%a" Src_pretty.pp_expr) gen_expr)
    (fun e ->
      let src =
        Printf.sprintf "void main() { int x = 1; int y = %s; }"
          (Format.asprintf "%a" Src_pretty.pp_expr e)
      in
      match Parser.parse_program src with
      | { Ast.funcs = [ { Ast.fbody = [ _; { Ast.sdesc = Ast.Decl (_, _, Some e'); _ } ]; _ } ]; _ }
        -> expr_equal e e'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer error location" `Quick test_lexer_error;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "dangling else" `Quick test_parser_dangling_else;
    Alcotest.test_case "for sugar" `Quick test_parser_for_sugar;
    Alcotest.test_case "globals" `Quick test_parser_globals;
    Alcotest.test_case "parse error" `Quick test_parser_error;
    Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
    Alcotest.test_case "array arguments" `Quick test_typecheck_array_args;
    Alcotest.test_case "pretty round-trip" `Quick test_roundtrip;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
  ]
