(** IR-level tests: lowering, CFG utilities, dominance, loop detection,
    liveness, SSA construction/validation/destruction and the clean-up
    passes — including the semantic-preservation property through the
    whole SSA round trip on generated programs. *)

open Spt_ir

let compile src = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src)

let main_of prog = Ir.func_of_program prog "main"

let loop_src =
  {|
int n = 10;
int a[10];
void main() {
  int i = 0;
  int s = 0;
  while (i < n) {
    if (a[i] > 0) { s = s + a[i]; }
    i = i + 1;
  }
  print_int(s);
}
|}

let test_lowering_shape () =
  let prog = compile loop_src in
  let f = main_of prog in
  (* a while-loop header exists and carries its origin tag *)
  let headers =
    List.filter
      (fun bid -> (Ir.block f bid).Ir.loop_origin = Some `While)
      (Ir.block_ids f)
  in
  Alcotest.(check int) "one while header" 1 (List.length headers);
  (* scalar globals lower to size-1 regions *)
  let n_sym = Ir.find_sym prog "n" in
  Alcotest.(check int) "scalar global is size 1" 1 n_sym.Ir.ssize;
  Alcotest.(check int) "array size" 10 (Ir.find_sym prog "a").Ir.ssize

let test_cfg_succs_preds () =
  let prog = compile loop_src in
  let f = main_of prog in
  let cfg = Cfg.of_func f in
  List.iter
    (fun bid ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "pred link bb%d->bb%d" bid s)
            true
            (List.mem bid (Cfg.predecessors cfg s)))
        (Cfg.successors cfg bid))
    (Cfg.reverse_postorder cfg);
  Alcotest.(check int) "entry first in rpo" f.Ir.entry
    (List.hd (Cfg.reverse_postorder cfg))

let test_unreachable_removal () =
  let prog = compile "void main() { return; print_int(1); }" in
  let f = main_of prog in
  let cfg = Cfg.of_func f in
  (* lowering creates an unreachable continuation; it must be gone *)
  Alcotest.(check int) "all blocks reachable"
    (List.length (Cfg.reverse_postorder cfg))
    (List.length (Ir.block_ids f))

let test_dominance () =
  let prog = compile loop_src in
  let f = main_of prog in
  let cfg = Cfg.of_func f in
  let dom = Dominance.compute cfg in
  (* the entry dominates everything *)
  List.iter
    (fun bid ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dom bb%d" bid)
        true
        (Dominance.dominates dom f.Ir.entry bid))
    (Cfg.reverse_postorder cfg);
  (* dominance is reflexive and antisymmetric on distinct blocks *)
  let rpo = Cfg.reverse_postorder cfg in
  List.iter
    (fun a ->
      Alcotest.(check bool) "reflexive" true (Dominance.dominates dom a a);
      List.iter
        (fun b ->
          if a <> b && Dominance.dominates dom a b then
            Alcotest.(check bool) "antisymmetric" false (Dominance.dominates dom b a))
        rpo)
    rpo

let test_loops_nesting () =
  let prog =
    compile
      {|
void main() {
  int i;
  int j;
  int s = 0;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) { s = s + i * j; }
  }
  while (s > 0) { s = s - 3; }
  print_int(s);
}
|}
  in
  let f = main_of prog in
  let loops = Loops.find f in
  Alcotest.(check int) "three loops" 3 (List.length loops);
  let depths = List.sort compare (List.map (fun l -> l.Loops.depth) loops) in
  Alcotest.(check (list int)) "nesting depths" [ 1; 1; 2 ] depths;
  let inner = Loops.innermost loops in
  Alcotest.(check int) "two innermost" 2 (List.length inner);
  (* the inner for-loop body is contained in the outer's *)
  let outer = List.find (fun l -> l.Loops.depth = 1 && l.Loops.origin = Some `For) loops in
  let nested = List.find (fun l -> l.Loops.depth = 2) loops in
  Alcotest.(check bool) "containment" true
    (Loops.Iset.subset nested.Loops.body outer.Loops.body);
  Alcotest.(check bool) "parent link" true (nested.Loops.parent <> None)

let test_loop_exits_latches () =
  let prog = compile loop_src in
  let f = main_of prog in
  match Loops.find f with
  | [ l ] ->
    Alcotest.(check int) "one latch" 1 (List.length l.Loops.latches);
    Alcotest.(check bool) "has exit" true (List.length l.Loops.exits >= 1);
    List.iter
      (fun (inside, outside) ->
        Alcotest.(check bool) "exit src inside" true (Loops.in_loop l inside);
        Alcotest.(check bool) "exit dst outside" false (Loops.in_loop l outside))
      l.Loops.exits
  | ls -> Alcotest.fail (Printf.sprintf "expected 1 loop, got %d" (List.length ls))

let test_liveness () =
  let prog = compile loop_src in
  let f = main_of prog in
  let live = Liveness.compute f in
  (* find the loop header: i and s are live around the back edge *)
  match Loops.find f with
  | [ l ] ->
    let live_in = Liveness.live_in live l.Loops.header in
    let names =
      List.sort_uniq compare
        (List.map (fun v -> v.Ir.vname) (Ir.Vset.elements live_in))
    in
    Alcotest.(check bool) "i live at header" true (List.mem "i" names);
    Alcotest.(check bool) "s live at header" true (List.mem "s" names)
  | _ -> Alcotest.fail "expected one loop"

let test_ssa_construct_valid () =
  let prog = compile loop_src in
  List.iter
    (fun (name, f) ->
      Ssa.construct f;
      match Ssa.check f with
      | Ok () -> ()
      | Error m -> Alcotest.fail (name ^ ": " ^ m))
    prog.Ir.funcs

let test_ssa_phis_at_header () =
  let prog = compile loop_src in
  let f = main_of prog in
  Ssa.construct f;
  match Loops.find f with
  | [ l ] ->
    let phis =
      List.filter
        (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind)
        (Ir.block f l.Loops.header).Ir.instrs
    in
    (* i and s are carried; the header needs phis for both *)
    Alcotest.(check bool) "at least two phis" true (List.length phis >= 2)
  | _ -> Alcotest.fail "expected one loop"

let test_ssa_checker_catches_double_def () =
  let prog = compile "void main() { int x = 1; print_int(x); }" in
  let f = main_of prog in
  Ssa.construct f;
  (* corrupt: duplicate a defining instruction *)
  let entry = Ir.block f f.Ir.entry in
  let dup =
    List.find_map
      (fun (i : Ir.instr) ->
        match Ir.def_of_kind i.Ir.kind with Some _ -> Some i | None -> None)
      entry.Ir.instrs
  in
  (match dup with
  | Some i -> Ir.append_instr entry (Ir.mk_instr f i.Ir.kind)
  | None -> Alcotest.fail "no def found");
  match Ssa.check f with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker should reject double definition"

let run_prog prog = (Spt_interp.Interp.run prog).Spt_interp.Interp.output

let test_ssa_roundtrip_semantics () =
  let src =
    {|
int n = 30;
int a[30];
int fsum(int k) {
  int s = 0;
  int i;
  for (i = 0; i < k; i = i + 1) { s = s + a[i]; }
  return s;
}
void main() {
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (i % 3 == 0) { a[i] = i * 2; } else { a[i] = i - 1; }
  }
  print_int(fsum(n));
  int x = 0;
  int y = 1;
  while (x < 10) {
    int t = x;
    x = y;
    y = t + y;
  }
  print_int(x);
  print_int(y);
}
|}
  in
  let reference = run_prog (compile src) in
  let prog = compile src in
  List.iter (fun (_, f) -> Ssa.construct f) prog.Ir.funcs;
  Alcotest.(check string) "SSA form runs identically" reference (run_prog prog);
  List.iter (fun (_, f) -> Passes.optimize_ssa f) prog.Ir.funcs;
  Alcotest.(check string) "optimized SSA runs identically" reference (run_prog prog);
  List.iter (fun (_, f) -> Ssa.destruct f; Passes.optimize_nonssa f) prog.Ir.funcs;
  Alcotest.(check string) "destructed form runs identically" reference (run_prog prog)

let test_constant_folding () =
  let prog = compile "void main() { int x = 2 + 3 * 4; print_int(x); }" in
  let f = main_of prog in
  Ssa.construct f;
  Passes.optimize_ssa f;
  (* after folding + copy-prop + dce, no Binop should survive *)
  let binops =
    List.concat_map
      (fun bid ->
        List.filter
          (fun (i : Ir.instr) ->
            match i.Ir.kind with Ir.Binop _ -> true | _ -> false)
          (Ir.block f bid).Ir.instrs)
      (Ir.block_ids f)
  in
  Alcotest.(check int) "binops folded away" 0 (List.length binops)

let test_dce_keeps_side_effects () =
  let prog =
    compile
      "int g; void main() { int dead = 1 + 2; g = 7; print_int(g); }"
  in
  let f = main_of prog in
  Ssa.construct f;
  Passes.optimize_ssa f;
  Alcotest.(check string) "still prints" "7\n" (run_prog prog)

let test_branch_folding () =
  let prog = compile "void main() { if (1 < 2) { print_int(1); } else { print_int(2); } }" in
  let f = main_of prog in
  Ssa.construct f;
  Passes.optimize_ssa f;
  let has_br =
    List.exists
      (fun bid ->
        match (Ir.block f bid).Ir.term with Ir.Br _ -> true | _ -> false)
      (Ir.block_ids f)
  in
  Alcotest.(check bool) "constant branch folded" false has_br;
  Alcotest.(check string) "output" "1\n" (run_prog prog)

(* random-program property: full pipeline preserves semantics.  The
   generator builds structured programs from a small statement grammar
   (guarded array accesses so no OOB). *)
let gen_program =
  let open QCheck.Gen in
  let var_names = [ "x"; "y"; "z" ] in
  let gen_atom =
    oneof
      [
        map (fun i -> Printf.sprintf "%d" i) (int_range 0 20);
        oneofl var_names;
        map (fun i -> Printf.sprintf "a[%d]" i) (int_range 0 7);
      ]
  in
  let gen_expr =
    gen_atom >>= fun a ->
    gen_atom >>= fun b ->
    oneofl [ "+"; "-"; "*"; "&"; "^"; "<"; "==" ] >>= fun op ->
    return (Printf.sprintf "(%s %s %s)" a op b)
  in
  let gen_stmt =
    gen_expr >>= fun e ->
    oneof
      [
        (oneofl var_names >>= fun v -> return (Printf.sprintf "%s = %s;" v e));
        (int_range 0 7 >>= fun i -> return (Printf.sprintf "a[%d] = %s;" i e));
        (gen_expr >>= fun c ->
         oneofl var_names >>= fun v ->
         return (Printf.sprintf "if (%s) { %s = %s; }" c v e));
      ]
  in
  list_size (int_range 1 12) gen_stmt >>= fun stmts ->
  gen_expr >>= fun last ->
  int_range 1 6 >>= fun trip ->
  return
    (Printf.sprintf
       {|
int a[8];
void main() {
  int x = 1;
  int y = 2;
  int z = 3;
  int k;
  for (k = 0; k < %d; k = k + 1) {
    %s
  }
  print_int(%s);
  print_int(x + y * 3 + z * 7 + a[0] + a[7] * 2);
}
|}
       trip (String.concat "\n    " stmts) last)

let prop_pipeline_preserves_semantics =
  QCheck.Test.make ~count:60 ~name:"SSA+opt+destruct preserves semantics"
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let reference = run_prog (compile src) in
      let prog = compile src in
      List.iter
        (fun (_, f) ->
          Ssa.construct f;
          (match Ssa.check f with
          | Ok () -> ()
          | Error m -> QCheck.Test.fail_report ("ssa check: " ^ m));
          Passes.optimize_ssa f;
          Ssa.destruct f;
          Passes.optimize_nonssa f)
        prog.Ir.funcs;
      run_prog prog = reference)

let suite =
  [
    Alcotest.test_case "lowering shape" `Quick test_lowering_shape;
    Alcotest.test_case "cfg succ/pred" `Quick test_cfg_succs_preds;
    Alcotest.test_case "unreachable removal" `Quick test_unreachable_removal;
    Alcotest.test_case "dominance" `Quick test_dominance;
    Alcotest.test_case "loop nesting" `Quick test_loops_nesting;
    Alcotest.test_case "loop exits/latches" `Quick test_loop_exits_latches;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "ssa valid" `Quick test_ssa_construct_valid;
    Alcotest.test_case "ssa header phis" `Quick test_ssa_phis_at_header;
    Alcotest.test_case "ssa checker" `Quick test_ssa_checker_catches_double_def;
    Alcotest.test_case "ssa round-trip semantics" `Quick test_ssa_roundtrip_semantics;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_side_effects;
    Alcotest.test_case "branch folding" `Quick test_branch_folding;
    QCheck_alcotest.to_alcotest prop_pipeline_preserves_semantics;
  ]

(* ------------------------------------------------------------------ *)
(* Function inlining (extension pass) *)

let inline_src =
  {|
int a[32];
int g;
int twice(int x) { return x * 2; }
int addg(int x) { g = g + x; return g; }
int rec_f(int n) { if (n <= 0) { return 0; } return n + rec_f(n - 1); }
void main() {
  int i;
  g = 0;
  for (i = 0; i < 32; i = i + 1) { a[i] = twice(i) + addg(i & 3); }
  print_int(rec_f(10));
  print_int(g + a[31]);
}
|}

let test_inline_semantics () =
  let reference = run_prog (compile inline_src) in
  let prog = compile inline_src in
  let n = Inline.run prog in
  Alcotest.(check bool) "inlined some sites" true (n >= 2);
  Alcotest.(check string) "semantics preserved" reference (run_prog prog);
  (* and the result still survives the whole SSA pipeline *)
  List.iter
    (fun (_, f) ->
      Ssa.construct f;
      (match Ssa.check f with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("post-inline SSA: " ^ m));
      Passes.optimize_ssa f;
      Ssa.destruct f;
      Passes.optimize_nonssa f)
    prog.Ir.funcs;
  Alcotest.(check string) "post-pipeline semantics" reference (run_prog prog)

let test_inline_skips_recursion () =
  let prog = compile inline_src in
  ignore (Inline.run prog);
  (* rec_f must still be called somewhere (not inlined away) *)
  let f = main_of prog in
  let still_calls_rec =
    List.exists
      (fun bid ->
        List.exists
          (fun (i : Ir.instr) ->
            match i.Ir.kind with
            | Ir.Call (_, "rec_f", _) -> true
            | _ -> false)
          (Ir.block f bid).Ir.instrs)
      (Ir.block_ids f)
  in
  Alcotest.(check bool) "recursive callee kept as a call" true still_calls_rec

let test_inline_array_params () =
  let src =
    {|
int a[16];
int b[16];
int sum3(int v[], int k) { return v[k] + v[k + 1] + v[k + 2]; }
void main() {
  int i;
  for (i = 0; i < 16; i = i + 1) { a[i] = i * i; b[i] = i + 1; }
  print_int(sum3(a, 4) + sum3(b, 7));
}
|}
  in
  let reference = run_prog (compile src) in
  let prog = compile src in
  let n = Inline.run prog in
  Alcotest.(check bool) "array-param sites inlined" true (n >= 2);
  Alcotest.(check string) "regions rebound correctly" reference (run_prog prog)

let inline_suite =
  [
    Alcotest.test_case "inline semantics" `Quick test_inline_semantics;
    Alcotest.test_case "inline skips recursion" `Quick test_inline_skips_recursion;
    Alcotest.test_case "inline array params" `Quick test_inline_array_params;
  ]

let suite = suite @ inline_suite

(* ------------------------------------------------------------------ *)
(* CFG surgery utilities *)

let test_split_edge () =
  let prog = compile loop_src in
  let f = main_of prog in
  let reference = run_prog (compile loop_src) in
  let cfg = Cfg.of_func f in
  (* split every edge once; semantics must be unchanged *)
  let edges =
    List.concat_map
      (fun src -> List.map (fun dst -> (src, dst)) (Cfg.successors cfg src))
      (Cfg.reverse_postorder cfg)
  in
  List.iter (fun (src, dst) -> ignore (Cfg.split_edge f ~src ~dst)) edges;
  Alcotest.(check string) "split edges preserve semantics" reference (run_prog prog)

let test_split_critical_edges () =
  let prog = compile loop_src in
  let f = main_of prog in
  ignore (Cfg.split_critical_edges f);
  (* afterwards no edge is critical *)
  let cfg = Cfg.of_func f in
  List.iter
    (fun src ->
      let succs = Cfg.successors cfg src in
      if List.length succs >= 2 then
        List.iter
          (fun dst ->
            Alcotest.(check bool)
              (Printf.sprintf "edge bb%d->bb%d not critical" src dst)
              true
              (List.length (Cfg.predecessors cfg dst) < 2))
          succs)
    (Cfg.reverse_postorder cfg)

let test_layout () =
  let prog = compile "int a[5]; float b[3]; int c; void main() { c = 1; }" in
  let layout = Spt_interp.Layout.build prog.Ir.globals in
  let a = Ir.find_sym prog "a" and b = Ir.find_sym prog "b" and c = Ir.find_sym prog "c" in
  (* regions are line-aligned and non-overlapping *)
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Ir.sname ^ " line aligned")
        0
        (Spt_interp.Layout.address layout s 0 mod Spt_interp.Layout.line_size))
    [ a; b; c ];
  let range s =
    ( Spt_interp.Layout.address layout s 0,
      Spt_interp.Layout.address layout s (s.Ir.ssize - 1) + 8 )
  in
  let disjoint (l1, h1) (l2, h2) = h1 <= l2 || h2 <= l1 in
  Alcotest.(check bool) "a/b disjoint" true (disjoint (range a) (range b));
  Alcotest.(check bool) "b/c disjoint" true (disjoint (range b) (range c));
  Alcotest.(check bool) "element addresses dense" true
    (Spt_interp.Layout.element_address layout a 1
    = Spt_interp.Layout.element_address layout a 0 + 1)

let cfg_suite =
  [
    Alcotest.test_case "split edge" `Quick test_split_edge;
    Alcotest.test_case "split critical edges" `Quick test_split_critical_edges;
    Alcotest.test_case "memory layout" `Quick test_layout;
  ]

let suite = suite @ cfg_suite

(* property: Cooper-Harvey-Kennedy dominators match brute force on
   random CFGs.  Brute force: a dominates b iff b is unreachable from
   the entry once a is removed. *)
let prop_dominance_bruteforce =
  QCheck.Test.make ~count:80 ~name:"dominance matches brute force on random CFGs"
    QCheck.(list_of_size (Gen.int_range 0 14) (pair (int_range 0 7) (int_range 0 7)))
    (fun raw_edges ->
      (* build a function with 8 blocks whose terminators encode the
         random edges (up to 2 successors each; extras dropped) *)
      let f = Ir.create_func ~name:"rand" ~params:[] ~ret:None in
      let blocks = Array.init 8 (fun _ -> Ir.add_block f) in
      f.Ir.entry <- blocks.(0).Ir.bid;
      let succs = Array.make 8 [] in
      List.iter
        (fun (a, b) ->
          if List.length succs.(a) < 2 && not (List.mem b succs.(a)) then
            succs.(a) <- b :: succs.(a))
        raw_edges;
      Array.iteri
        (fun k ss ->
          let cond = Ir.fresh_var f ~name:"c" ~ty:Ir.I64 in
          ignore cond;
          blocks.(k).Ir.term <-
            (match ss with
            | [] -> Ir.Ret None
            | [ s ] -> Ir.Jump blocks.(s).Ir.bid
            | [ s1; s2 ] -> Ir.Br (Ir.Imm_i 1L, blocks.(s1).Ir.bid, blocks.(s2).Ir.bid)
            | _ -> assert false))
        succs;
      let cfg = Cfg.of_func f in
      let dom = Dominance.compute cfg in
      let reachable = Cfg.reverse_postorder cfg in
      (* brute force reachability avoiding [cut] *)
      let reaches_avoiding cut target =
        let seen = Hashtbl.create 8 in
        let rec go bid =
          bid = target
          ||
          if Hashtbl.mem seen bid || bid = cut then false
          else begin
            Hashtbl.replace seen bid ();
            List.exists go (Ir.term_succs (Ir.block f bid).Ir.term)
          end
        in
        f.Ir.entry <> cut && go f.Ir.entry
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let brute =
                a = b || (a = f.Ir.entry) || not (reaches_avoiding a b)
              in
              Dominance.dominates dom a b = brute)
            reachable)
        reachable)

let suite =
  suite
  @ [ QCheck_alcotest.to_alcotest prop_dominance_bruteforce ]
