(** Interpreter semantics tests: arithmetic, control flow, memory,
    calls, builtins, runtime errors and the instrumentation hooks. *)

open Spt_ir
open Spt_interp

let run src = Interp.run_source src

let output src = (run src).Interp.output

let check_out name src expected =
  Alcotest.(check string) name expected (output src)

let test_arith () =
  check_out "int arithmetic"
    {|
void main() {
  print_int(7 + 3 * 2);
  print_int(7 / 2);
  print_int(-7 % 3);
  print_int(1 << 10);
  print_int(255 & 15);
  print_int(5 ^ 3);
  print_int(~0);
}
|}
    "13\n3\n-1\n1024\n15\n6\n-1\n"

let test_float () =
  check_out "float arithmetic"
    {|
void main() {
  float x = 1.5;
  float y = x * 4.0 - 2.0;
  print_float(y);
  print_float(sqrt(16.0));
  print_float(fabs(0.0 - 3.25));
  print_int(int_of_float(y));
  print_float(float_of_int(7));
}
|}
    "4\n4\n3.25\n4\n7\n"

let test_comparisons_and_logic () =
  check_out "comparisons and short-circuit"
    {|
int trace;
int bump(int v) { trace = trace + 1; return v; }
void main() {
  print_int(1 < 2);
  print_int(2 <= 1);
  print_int(1 == 1 && 2 != 2);
  /* short-circuit: bump must not run */
  trace = 0;
  int r = 0 && bump(1);
  print_int(r);
  print_int(trace);
  r = 1 || bump(1);
  print_int(r);
  print_int(trace);
}
|}
    "1\n0\n0\n0\n0\n1\n0\n"

let test_control_flow () =
  check_out "loops and branches"
    {|
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    s = s + i;
  }
  print_int(s);
  int j = 3;
  do { s = s + j; j = j - 1; } while (j > 0);
  print_int(s);
  while (j < 2) { j = j + 1; }
  print_int(j);
}
|}
    "16\n22\n2\n"

let test_arrays_and_globals () =
  check_out "arrays, initialized globals"
    {|
int n = 5;
int a[5] = {10, 20, 30};
float fa[3];
void main() {
  int i;
  int s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
  print_int(s);
  fa[2] = 1.25;
  print_float(fa[2] + fa[0]);
}
|}
    "60\n1.25\n"

let test_calls () =
  check_out "recursion and array parameters"
    {|
int buf[8];
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void fill(int a[], int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { a[i] = i * i; }
}
void main() {
  print_int(fib(10));
  fill(buf, 8);
  print_int(buf[7]);
}
|}
    "55\n49\n"

let test_rand_deterministic () =
  let src =
    {|
void main() {
  srand(42);
  print_int(rand() & 1023);
  print_int(rand() & 1023);
}
|}
  in
  Alcotest.(check string) "deterministic rand" (output src) (output src)

let expect_error src fragment =
  match run src with
  | exception Interp.Runtime_error msg ->
    if
      not
        (let flen = String.length fragment in
         let rec scan i =
           i + flen <= String.length msg
           && (String.sub msg i flen = fragment || scan (i + 1))
         in
         scan 0)
    then Alcotest.fail (Printf.sprintf "error %S does not mention %S" msg fragment)
  | _ -> Alcotest.fail "expected runtime error"

let test_runtime_errors () =
  expect_error "void main() { int x = 1 / 0; print_int(x); }" "division";
  expect_error "int a[3]; void main() { a[3] = 1; }" "out-of-bounds";
  expect_error "int a[3]; void main() { print_int(a[-1]); }" "out-of-bounds"

let test_step_limit () =
  match Interp.run_source ~max_steps:1000 "void main() { while (1) { } }" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected step limit"

let test_spt_instrs_are_nops () =
  (* hand-build: a loop with SPT_FORK/KILL must behave sequentially *)
  let ast = Spt_srclang.Typecheck.parse_and_check
    "void main() { int i = 0; while (i < 3) { i = i + 1; } print_int(i); }" in
  let prog = Lower.lower_program ast in
  let f = Ir.func_of_program prog "main" in
  (* prepend a fork to every block: still a sequential no-op *)
  List.iter
    (fun bid -> Ir.prepend_instr (Ir.block f bid) (Ir.mk_instr f (Ir.Spt_fork 0)))
    (Ir.block_ids f);
  let r = Interp.run prog in
  Alcotest.(check string) "forks are no-ops" "3\n" r.Interp.output

let test_hooks_fire () =
  let instrs = ref 0 and blocks = ref 0 and edges = ref 0 in
  let branches = ref 0 and enters = ref 0 and exits = ref 0 in
  let hooks =
    {
      Interp.on_instr = (fun _ _ _ _ -> incr instrs);
      on_block = (fun _ _ -> incr blocks);
      on_edge = (fun _ ~src:_ ~dst:_ -> incr edges);
      on_branch = (fun _ _ ~taken:_ -> incr branches);
      on_enter = (fun _ -> incr enters);
      on_exit = (fun _ -> incr exits);
    }
  in
  let ast =
    Spt_srclang.Typecheck.parse_and_check
      {|
int f(int x) { return x + 1; }
void main() {
  int i = 0;
  while (i < 4) { i = f(i); }
  print_int(i);
}
|}
  in
  let prog = Lower.lower_program ast in
  let r = Interp.run ~hooks prog in
  Alcotest.(check string) "output" "4\n" r.Interp.output;
  Alcotest.(check int) "instr events equal dynamic count" r.Interp.dynamic_instrs !instrs;
  Alcotest.(check bool) "blocks fired" true (!blocks > 0);
  Alcotest.(check bool) "edges fired" true (!edges > 0);
  Alcotest.(check int) "branch per loop test" 5 !branches;
  Alcotest.(check int) "enter main + 4 calls" 5 !enters;
  Alcotest.(check int) "exit count" 5 !exits

let test_effects_content () =
  (* the store/load effects must carry element addresses and values *)
  let stores = ref [] and loads = ref [] in
  let hooks =
    {
      Interp.null_hooks with
      Interp.on_instr =
        (fun _ _ _ eff ->
          stores := eff.Interp.stores @ !stores;
          loads := eff.Interp.loads @ !loads);
    }
  in
  let ast =
    Spt_srclang.Typecheck.parse_and_check
      "int a[4]; void main() { a[2] = 7; print_int(a[2]); }"
  in
  let prog = Lower.lower_program ast in
  ignore (Interp.run ~hooks prog);
  (match !stores with
  | [ (addr, Eval.Vi 7L) ] -> Alcotest.(check bool) "addr positive" true (addr > 0)
  | _ -> Alcotest.fail "expected exactly one store of 7");
  match !loads with
  | [ (_, Eval.Vi 7L) ] -> ()
  | _ -> Alcotest.fail "expected exactly one load of 7"

(* property: wrapping 64-bit arithmetic agrees between interpreter and
   OCaml Int64 on random operand pairs *)
let prop_arith_agrees =
  QCheck.Test.make ~count:200 ~name:"interpreter arithmetic matches Int64"
    QCheck.(pair (int_range (-10000) 10000) (int_range 1 10000))
    (fun (a, b) ->
      let src =
        Printf.sprintf
          "void main() { print_int(%d + %d); print_int(%d * %d); print_int(%d / %d); print_int(%d %% %d); }"
          a b a b a b a b
      in
      let expected =
        Printf.sprintf "%Ld\n%Ld\n%Ld\n%Ld\n"
          Int64.(add (of_int a) (of_int b))
          Int64.(mul (of_int a) (of_int b))
          Int64.(div (of_int a) (of_int b))
          Int64.(rem (of_int a) (of_int b))
      in
      output src = expected)

let suite =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_arith;
    Alcotest.test_case "float arithmetic" `Quick test_float;
    Alcotest.test_case "comparisons and logic" `Quick test_comparisons_and_logic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "arrays and globals" `Quick test_arrays_and_globals;
    Alcotest.test_case "calls" `Quick test_calls;
    Alcotest.test_case "deterministic rand" `Quick test_rand_deterministic;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "SPT instrs are no-ops" `Quick test_spt_instrs_are_nops;
    Alcotest.test_case "hooks fire" `Quick test_hooks_fire;
    Alcotest.test_case "effects content" `Quick test_effects_content;
    QCheck_alcotest.to_alcotest prop_arith_agrees;
  ]
