test/test_workloads.ml: Alcotest Config Lazy List Pipeline Printf Spt_driver Spt_tlsim Spt_util Spt_workloads
