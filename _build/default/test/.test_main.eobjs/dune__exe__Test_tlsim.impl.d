test/test_tlsim.ml: Alcotest Branch_pred Cache Int List Lower Printf Set Spt_driver Spt_ir Spt_srclang Spt_tlsim Tls_machine
