test/test_interp.ml: Alcotest Eval Int64 Interp Ir List Lower Printf QCheck QCheck_alcotest Spt_interp Spt_ir Spt_srclang String
