test/test_driver.ml: Alcotest Config List Option Pipeline Printexc Printf Report Spt_driver Spt_srclang Spt_tlsim Spt_workloads String
