test/test_profile.ml: Alcotest Dep_profile Edge_profile Float Ir List Loops Lower Option Printf Spt_interp Spt_ir Spt_profile Spt_srclang Spt_transform Ssa Value_profile
