test/test_util.ml: Alcotest Bitset Dot Gen Idgen List Option QCheck QCheck_alcotest Spt_util Stats String Table Topo_sort
