test/test_cost.ml: Alcotest Cost_model Float Fun Gen Hashtbl Int List Option Printf QCheck QCheck_alcotest Set Spt_cost Spt_depgraph Spt_ir Spt_partition Spt_srclang
