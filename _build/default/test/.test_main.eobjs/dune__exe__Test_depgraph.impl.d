test/test_depgraph.ml: Alcotest Depgraph Effects Format Int Ir Ir_pretty List Loops Lower Passes Printf Set Spt_depgraph Spt_interp Spt_ir Spt_profile Spt_srclang Ssa String
