test/test_partition.ml: Alcotest Depgraph Effects Int Ir List Loops Lower Partition Passes Printf Set Spt_cost Spt_depgraph Spt_ir Spt_partition Spt_srclang Ssa
