test/test_ir.ml: Alcotest Array Cfg Dominance Gen Hashtbl Inline Ir List Liveness Loops Lower Passes Printf QCheck QCheck_alcotest Spt_interp Spt_ir Spt_srclang Ssa String
