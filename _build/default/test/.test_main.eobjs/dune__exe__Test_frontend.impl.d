test/test_frontend.ml: Alcotest Ast Format Int64 Lexer List Parser Printf QCheck QCheck_alcotest Spt_srclang Src_pretty Typecheck
