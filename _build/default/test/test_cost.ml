(** Cost-model tests, centered on the paper's worked example.

    Fig. 5's dependence graph: nodes A..F; intra-iteration edges
    D'→A (0.2), E'→B (0.1), B→C (0.5), F'→C (0.2), C→E (1); violation
    candidates D, E, F.  For the partition with only D pre-fork the
    paper computes v(A)=0, v(B)=0.1, v(C)=0.24, v(D)=v(F)=0, v(E)=0.24,
    and a misspeculation cost of 0.58 with unit operation costs
    (§4.2.5). *)

open Spt_cost

(* node ids: A=0 B=1 C=2 D=3 E=4 F=5; pseudo ids via Cost_model *)
let a = 0
let b = 1
let c = 2
let d = 3
let e = 4
let f = 5

let pseudo = Cost_model.pseudo_of_vc

let fig5_initial =
  [
    { Cost_model.gsrc = pseudo d; gdst = a; gprob = 0.2 };
    { Cost_model.gsrc = pseudo e; gdst = b; gprob = 0.1 };
    { Cost_model.gsrc = pseudo f; gdst = c; gprob = 0.2 };
  ]

let fig5_intra =
  [
    { Cost_model.gsrc = b; gdst = c; gprob = 0.5 };
    { Cost_model.gsrc = c; gdst = e; gprob = 1.0 };
  ]

let fig5_probs ~combine ~prefork_d =
  let vc_prob p =
    let vc = Cost_model.vc_of_pseudo p in
    if prefork_d && vc = d then 0.0 else 1.0
  in
  let op_nodes = [ a; b; c; d; e; f ] in
  let vc_pseudo = List.map pseudo [ d; e; f ] in
  match combine with
  | `Per_seed ->
    Cost_model.compute_per_seed ~op_nodes ~vc_pseudo ~initial:fig5_initial
      ~intra:fig5_intra ~vc_prob ()
  | (`Independent | `Max_rule) as combine ->
    Cost_model.compute ~combine ~op_nodes ~vc_pseudo ~initial:fig5_initial
      ~intra:fig5_intra ~vc_prob ()

let feq = Alcotest.float 1e-9

let check_fig5 combine () =
  let v = fig5_probs ~combine ~prefork_d:true in
  let get n = Option.value ~default:(-1.0) (Hashtbl.find_opt v n) in
  Alcotest.check feq "v(A)" 0.0 (get a);
  Alcotest.check feq "v(B)" 0.1 (get b);
  Alcotest.check feq "v(C)" 0.24 (get c);
  Alcotest.check feq "v(D)" 0.0 (get d);
  Alcotest.check feq "v(E)" 0.24 (get e);
  Alcotest.check feq "v(F)" 0.0 (get f);
  (* unit costs: total = 0.58, the paper's number *)
  let total = List.fold_left (fun acc n -> acc +. get n) 0.0 [ a; b; c; d; e; f ] in
  Alcotest.check feq "cost = 0.58" 0.58 total

(* the example has no reconvergent paths, so the paper's rule and the
   per-seed refinement agree exactly *)
let test_fig5_paper_rule = check_fig5 `Independent
let test_fig5_per_seed = check_fig5 `Per_seed

let test_fig5_empty_prefork () =
  let v = fig5_probs ~combine:`Independent ~prefork_d:false in
  let get n = Option.value ~default:(-1.0) (Hashtbl.find_opt v n) in
  (* with D speculated too, v(A) = 0.2 and downstream costs grow *)
  Alcotest.check feq "v(A) with D speculative" 0.2 (get a);
  Alcotest.(check bool) "cost grows" true
    (let total p =
       let v = fig5_probs ~combine:`Independent ~prefork_d:p in
       List.fold_left
         (fun acc n -> acc +. Option.value ~default:0.0 (Hashtbl.find_opt v n))
         0.0 [ a; b; c; d; e; f ]
     in
     total false > total true)

(* on a reconvergent diamond, `Independent` double-counts one seed while
   `Per_seed` does not *)
let test_reconvergence_overestimate () =
  let s = 9 in
  let initial = [ { Cost_model.gsrc = pseudo s; gdst = 0; gprob = 1.0 } ] in
  let intra =
    [
      { Cost_model.gsrc = 0; gdst = 1; gprob = 1.0 };
      { Cost_model.gsrc = 0; gdst = 2; gprob = 1.0 };
      { Cost_model.gsrc = 1; gdst = 3; gprob = 1.0 };
      { Cost_model.gsrc = 2; gdst = 3; gprob = 1.0 };
    ]
  in
  let vc_prob _ = 0.5 in
  let v_ind =
    Cost_model.compute ~combine:`Independent ~op_nodes:[ 0; 1; 2; 3 ]
      ~vc_pseudo:[ pseudo s ] ~initial ~intra ~vc_prob ()
  in
  let v_seed =
    Cost_model.compute_per_seed ~op_nodes:[ 0; 1; 2; 3 ] ~vc_pseudo:[ pseudo s ]
      ~initial ~intra ~vc_prob ()
  in
  let at tbl n = Option.value ~default:0.0 (Hashtbl.find_opt tbl n) in
  Alcotest.check feq "per-seed: one cause counted once" 0.5 (at v_seed 3);
  Alcotest.check feq "independent: double-counted" 0.75 (at v_ind 3);
  Alcotest.(check bool) "independent is an over-estimate" true
    (at v_ind 3 > at v_seed 3)

(* end-to-end monotonicity on a real loop: moving more violation
   candidates pre-fork never increases the cost (the property the
   branch-and-bound pruning relies on, §5) *)
let build_loop_cm () =
  let src =
    {|
int n = 50;
int a[50];
int b[50];
void main() {
  int i = 0;
  int s = 0;
  while (i < n) {
    a[i] = b[i] + s;
    s = s + a[i];
    i = i + 1;
  }
  print_int(s);
}
|}
  in
  let prog =
    Spt_ir.Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src)
  in
  let f = Spt_ir.Ir.func_of_program prog "main" in
  Spt_ir.Ssa.construct f;
  Spt_ir.Passes.optimize_ssa f;
  let eff = Spt_depgraph.Effects.compute prog in
  let l = List.hd (Spt_ir.Loops.find f) in
  let g = Spt_depgraph.Depgraph.build eff f l in
  (g, Cost_model.build g)

module Iset = Set.Make (Int)

let test_monotonicity () =
  let g, cm = build_loop_cm () in
  let vcs = Spt_depgraph.Depgraph.violation_candidates g in
  Alcotest.(check bool) "has VCs" true (vcs <> []);
  let anc = Spt_partition.Partition.ancestors g in
  let cost set =
    Cost_model.misspeculation_cost cm
      ~prefork:(Spt_partition.Partition.closure g ~anc (Iset.of_list set))
  in
  (* grow the prefix of VCs: cost must be non-increasing *)
  let rec grow prefix rest prev =
    Alcotest.(check bool)
      (Printf.sprintf "monotone at %d VCs" (List.length prefix))
      true
      (cost prefix <= prev +. 1e-9);
    match rest with
    | [] -> ()
    | vc :: rest -> grow (vc :: prefix) rest (cost prefix)
  in
  grow [] vcs infinity

let test_empty_partition_cost_positive () =
  let _, cm = build_loop_cm () in
  let c = Cost_model.misspeculation_cost cm ~prefork:Iset.empty in
  Alcotest.(check bool) "speculating everything costs something" true (c > 0.0)

(* properties on random DAGs: both rules stay within [0,1]; on a
   single-seed *tree* (every node has at most one predecessor, so no
   path reconvergence) the two rules coincide exactly *)
let prop_rules_agree_on_trees =
  QCheck.Test.make ~count:100 ~name:"rules agree on single-seed trees; both in [0,1]"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 9) (int_range 0 9))
        (float_range 0.1 1.0))
    (fun (parents, p_seed) ->
      (* node k+1's parent is parents[k] clamped below k+1: a tree rooted
         at node 0, which is the only seed *)
      let n = List.length parents + 1 in
      let intra =
        List.mapi
          (fun k parent ->
            { Cost_model.gsrc = min parent k; gdst = k + 1; gprob = 0.6 })
          parents
      in
      let initial = [ { Cost_model.gsrc = pseudo 0; gdst = 0; gprob = 0.9 } ] in
      let op_nodes = List.init n Fun.id in
      let vc_pseudo = [ pseudo 0 ] in
      let vc_prob _ = p_seed in
      let vi =
        Cost_model.compute ~combine:`Independent ~op_nodes ~vc_pseudo ~initial
          ~intra ~vc_prob ()
      in
      let vs =
        Cost_model.compute_per_seed ~op_nodes ~vc_pseudo ~initial ~intra ~vc_prob ()
      in
      List.for_all
        (fun k ->
          let a = Option.value ~default:0.0 (Hashtbl.find_opt vi k) in
          let b = Option.value ~default:0.0 (Hashtbl.find_opt vs k) in
          a >= -1e-9 && a <= 1.0 +. 1e-9 && Float.abs (a -. b) < 1e-9)
        op_nodes)

let suite =
  [
    Alcotest.test_case "Fig 5/6 worked example (paper rule)" `Quick test_fig5_paper_rule;
    Alcotest.test_case "Fig 5/6 worked example (per-seed)" `Quick test_fig5_per_seed;
    Alcotest.test_case "Fig 5 empty pre-fork" `Quick test_fig5_empty_prefork;
    Alcotest.test_case "reconvergence over-estimate" `Quick test_reconvergence_overestimate;
    Alcotest.test_case "cost monotone in pre-fork set" `Quick test_monotonicity;
    Alcotest.test_case "empty partition costs" `Quick test_empty_partition_cost_positive;
    QCheck_alcotest.to_alcotest prop_rules_agree_on_trees;
  ]

(* the total cost of any partition is bounded by the loop's dynamic
   weight: v(c) <= 1 per node, each weighted by Cost(c) x freq(c) *)
let test_cost_bounded_by_body () =
  let g, cm = build_loop_cm () in
  let bound =
    List.fold_left
      (fun acc iid ->
        acc
        +. (float_of_int
              (Spt_ir.Ir.op_cost (Spt_depgraph.Depgraph.instr g iid).Spt_ir.Ir.kind)
           *. Spt_depgraph.Depgraph.freq g iid))
      0.0 g.Spt_depgraph.Depgraph.nodes
  in
  List.iter
    (fun combine ->
      let c = Cost_model.misspeculation_cost ~combine cm ~prefork:Iset.empty in
      Alcotest.(check bool)
        (Printf.sprintf "cost %.1f within body bound %.1f" c bound)
        true
        (c <= bound +. 1e-6 && c >= 0.0))
    [ `Per_seed; `Independent; `Max_rule ]

let suite = suite @ [ Alcotest.test_case "cost bounded by body" `Quick test_cost_bounded_by_body ]
