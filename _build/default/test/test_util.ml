(** Tests for [Spt_util]: id generation, topological sorting, statistics,
    bitsets and table rendering. *)

open Spt_util

let check = Alcotest.check

let test_idgen () =
  let g = Idgen.create () in
  check Alcotest.int "first id" 0 (Idgen.fresh g);
  check Alcotest.int "second id" 1 (Idgen.fresh g);
  check Alcotest.int "peek" 2 (Idgen.peek g);
  Idgen.reset g;
  check Alcotest.int "after reset" 0 (Idgen.fresh g)

let test_topo_linear () =
  let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [] in
  check
    (Alcotest.list Alcotest.int)
    "linear order" [ 0; 1; 2 ]
    (Topo_sort.sort ~nodes:[ 2; 0; 1 ] ~succs)

let test_topo_diamond () =
  let succs = function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | 2 -> [ 3 ] | _ -> [] in
  let order = Topo_sort.sort ~nodes:[ 0; 1; 2; 3 ] ~succs in
  let pos x = Option.get (List.find_index (( = ) x) order) in
  Alcotest.(check bool) "0 before 1" true (pos 0 < pos 1);
  Alcotest.(check bool) "0 before 2" true (pos 0 < pos 2);
  Alcotest.(check bool) "1 before 3" true (pos 1 < pos 3);
  Alcotest.(check bool) "2 before 3" true (pos 2 < pos 3)

let test_topo_cycle () =
  let succs = function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  Alcotest.check_raises "cycle detected" (Topo_sort.Cycle [ 0; 1 ]) (fun () ->
      ignore (Topo_sort.sort ~nodes:[ 0; 1 ] ~succs))

let test_topo_order_fn () =
  let succs = function 0 -> [ 1 ] | _ -> [] in
  let order = Topo_sort.order ~nodes:[ 0; 1 ] ~succs in
  Alcotest.(check bool) "order respects edge" true (order 0 < order 1)

let feq = Alcotest.float 1e-9

let test_stats_mean () =
  check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check feq "empty mean" 0.0 (Stats.mean [])

let test_stats_geomean () =
  check feq "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.check_raises "geomean rejects nonpositive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_pearson () =
  check feq "perfect correlation" 1.0
    (Stats.pearson [ 1.0; 2.0; 3.0 ] [ 2.0; 4.0; 6.0 ]);
  check feq "perfect anticorrelation" (-1.0)
    (Stats.pearson [ 1.0; 2.0; 3.0 ] [ 3.0; 2.0; 1.0 ]);
  check feq "constant series" 0.0 (Stats.pearson [ 1.0; 2.0 ] [ 5.0; 5.0 ])

let test_stats_percentile () =
  check feq "median" 2.0 (Stats.percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  check feq "min" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  check feq "max" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ])

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "initially empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  check
    (Alcotest.list Alcotest.int)
    "elements sorted" [ 0; 64; 99 ] (Bitset.elements s)

let test_bitset_subset () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  Alcotest.(check bool) "a subset b" true (Bitset.subset a b);
  Alcotest.(check bool) "b not subset a" false (Bitset.subset b a);
  let c = Bitset.copy a in
  Alcotest.(check bool) "copy equal" true (Bitset.equal a c);
  Bitset.add c 5;
  Alcotest.(check bool) "copy independent" false (Bitset.equal a c)

let test_bitset_bounds () =
  let s = Bitset.create 4 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 4)

let test_table () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "x" ])

let test_dot () =
  let g = Dot.create "g" in
  Dot.add_node g ~id:1 ~label:"a \"quoted\"";
  Dot.add_edge g ~src:1 ~dst:1 ~label:"self";
  let s = Dot.render g in
  Alcotest.(check bool) "digraph header" true
    (String.sub s 0 9 = "digraph g");
  Alcotest.(check bool) "escapes quotes" true
    (let rec contains i =
       i + 2 <= String.length s
       && (String.sub s i 2 = "\\\"" || contains (i + 1))
     in
     contains 0)

(* property: topological sort output is a permutation respecting edges *)
let prop_topo_sort_valid =
  QCheck.Test.make ~count:100 ~name:"topo sort respects random DAG edges"
    QCheck.(list_of_size (Gen.int_range 1 15) (pair small_nat small_nat))
    (fun pairs ->
      (* build a DAG by orienting edges from smaller to larger node *)
      let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs) in
      match nodes with
      | [] -> true
      | _ ->
        let edges =
          List.filter_map
            (fun (a, b) ->
              if a < b then Some (a, b) else if b < a then Some (b, a) else None)
            pairs
        in
        let succs n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
        let order = Spt_util.Topo_sort.sort ~nodes ~succs in
        let pos x = Option.get (List.find_index (( = ) x) order) in
        List.length order = List.length nodes
        && List.for_all (fun (a, b) -> pos a < pos b) edges)

let prop_bitset_elements =
  QCheck.Test.make ~count:100 ~name:"bitset elements round-trip"
    QCheck.(list_of_size (Gen.int_range 0 30) (int_range 0 199))
    (fun xs ->
      let s = Spt_util.Bitset.of_list 200 xs in
      Spt_util.Bitset.elements s = List.sort_uniq compare xs)

let suite =
  [
    Alcotest.test_case "idgen" `Quick test_idgen;
    Alcotest.test_case "topo linear" `Quick test_topo_linear;
    Alcotest.test_case "topo diamond" `Quick test_topo_diamond;
    Alcotest.test_case "topo cycle" `Quick test_topo_cycle;
    Alcotest.test_case "topo order fn" `Quick test_topo_order_fn;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats pearson" `Quick test_stats_pearson;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset subset/copy" `Quick test_bitset_subset;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "table render" `Quick test_table;
    Alcotest.test_case "dot render" `Quick test_dot;
    QCheck_alcotest.to_alcotest prop_topo_sort_valid;
    QCheck_alcotest.to_alcotest prop_bitset_elements;
  ]
