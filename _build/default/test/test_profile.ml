(** Profiler tests: edge counts and trip counts, dependence
    probabilities (intra / cross-iteration, through calls), and value
    stride detection. *)

open Spt_ir
open Spt_profile

let compile src = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src)

let profile src =
  let prog = compile src in
  let ep = Edge_profile.create () in
  let dp = Dep_profile.create prog in
  let hooks =
    Spt_interp.Interp.combine_hooks [ Edge_profile.hooks ep; Dep_profile.hooks dp ]
  in
  let _ = Spt_interp.Interp.run ~hooks prog in
  (prog, ep, dp)

let test_edge_counts () =
  let prog, ep, _ =
    profile
      {|
int n = 10;
void main() {
  int i = 0;
  int s = 0;
  while (i < n) {
    if (i % 2 == 0) { s = s + 1; }
    i = i + 1;
  }
  print_int(s);
}
|}
  in
  let f = Ir.func_of_program prog "main" in
  let l = List.hd (Loops.find f) in
  (* the header runs n+1 times: 10 iterations plus the failing test *)
  Alcotest.(check int) "header count" 11
    (Edge_profile.block_count ep f l.Loops.header);
  Alcotest.(check (float 0.01)) "trip count" 11.0
    (Edge_profile.avg_trip_count ep f l);
  Alcotest.(check int) "main called once" 1 (Edge_profile.call_count ep f);
  (* the conditional arm executes half the iterations *)
  let arm_prob =
    Loops.Iset.fold
      (fun bid acc ->
        Float.min acc (Edge_profile.exec_prob_in_loop ep f l bid))
      l.Loops.body 1.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "some block at ~1/2 probability (%.2f)" arm_prob)
    true
    (arm_prob > 0.3 && arm_prob < 0.7)

let test_trip_count_nested () =
  let prog, ep, _ =
    profile
      {|
void main() {
  int i;
  int j;
  int s = 0;
  for (i = 0; i < 5; i = i + 1) {
    for (j = 0; j < 7; j = j + 1) { s = s + 1; }
  }
  print_int(s);
}
|}
  in
  let f = Ir.func_of_program prog "main" in
  let loops = Loops.find f in
  let inner = List.find (fun l -> l.Loops.depth = 2) loops in
  (* entered 5 times, 8 header executions each *)
  Alcotest.(check (float 0.01)) "inner trip" 8.0
    (Edge_profile.avg_trip_count ep f inner)

let loop_key prog fname =
  let f = Ir.func_of_program prog fname in
  let l = List.hd (Loops.find f) in
  ((fname, l.Loops.header), f, l)

let test_dep_profile_cross () =
  (* every iteration reads what the previous one wrote: cross1 prob 1 *)
  let prog, _, dp =
    profile
      {|
int n = 50;
int a[50];
void main() {
  int i = 1;
  while (i < n) {
    a[i] = a[i - 1] + 1;
    i = i + 1;
  }
  print_int(a[49]);
}
|}
  in
  let key, f, l = loop_key prog "main" in
  ignore f;
  ignore l;
  Alcotest.(check bool) "loop observed" true (Dep_profile.observed dp key);
  let cross = Dep_profile.pairs dp key Dep_profile.Cross1 in
  Alcotest.(check bool) "cross pair found" true (cross <> []);
  List.iter
    (fun (_, _, p) ->
      Alcotest.(check (float 0.05)) "certain recurrence" 1.0 p)
    cross

let test_dep_profile_rare () =
  (* conflicts only when (i*17)%64 lands on the next read: rare *)
  let prog, _, dp =
    profile
      {|
int n = 200;
int a[64];
void main() {
  int i = 0;
  while (i < n) {
    int x = a[(i * 17) & 63];
    a[(i * 29 + 5) & 63] = x + i;
    i = i + 1;
  }
  print_int(a[0]);
}
|}
  in
  let key, _, _ = loop_key prog "main" in
  let cross = Dep_profile.pairs dp key Dep_profile.Cross1 in
  List.iter
    (fun (_, _, p) ->
      Alcotest.(check bool) (Printf.sprintf "rare conflict %.3f" p) true (p < 0.3))
    cross

let test_dep_profile_intra () =
  (* write then read the same cell within one iteration *)
  let prog, _, dp =
    profile
      {|
int n = 30;
int a[30];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = i * 2;
    int y = a[i] + 1;
    a[i] = y;
    i = i + 1;
  }
  print_int(a[29]);
}
|}
  in
  let key, _, _ = loop_key prog "main" in
  let intra = Dep_profile.pairs dp key Dep_profile.Intra in
  Alcotest.(check bool) "intra dependence observed" true (intra <> []);
  Alcotest.(check int) "no cross dependences" 0
    (List.length (Dep_profile.pairs dp key Dep_profile.Cross1))

let test_dep_profile_through_calls () =
  (* the callee's store surfaces at the call site *)
  let prog, _, dp =
    profile
      {|
int n = 40;
int a[40];
void put(int i, int v) { a[i] = v; }
int get(int i) { return a[i]; }
void main() {
  int i = 1;
  while (i < n) {
    put(i, get(i - 1) + 1);
    i = i + 1;
  }
  print_int(a[39]);
}
|}
  in
  let key, f, l = loop_key prog "main" in
  (* writer and reader owners must be call instructions of main's body *)
  let cross = Dep_profile.pairs dp key Dep_profile.Cross1 in
  Alcotest.(check bool) "cross through calls" true (cross <> []);
  let body_instrs =
    Loops.Iset.fold
      (fun bid acc ->
        List.map (fun (i : Ir.instr) -> i.Ir.iid) (Ir.block f bid).Ir.instrs @ acc)
      l.Loops.body []
  in
  List.iter
    (fun (w, r, _) ->
      Alcotest.(check bool) "owner writer in body" true (List.mem w body_instrs);
      Alcotest.(check bool) "owner reader in body" true (List.mem r body_instrs))
    cross

let test_value_profile_stride () =
  let src =
    {|
int n = 60;
int a[60];
void main() {
  int i = 0;
  int x = 5;
  while (i < n) {
    a[i] = x;
    x = x + 7;
    i = i + 1;
  }
  print_int(x);
}
|}
  in
  let prog = compile src in
  List.iter (fun (_, f) -> Ssa.construct f) prog.Ir.funcs;
  let f = Ir.func_of_program prog "main" in
  let l = List.hd (Loops.find f) in
  let candidates = Spt_transform.Svp.candidates f l in
  Alcotest.(check bool) "carried candidates" true (candidates <> []);
  let targets =
    List.map
      (fun (_, def) -> { Value_profile.tfunc = "main"; tiid = def })
      candidates
  in
  let vp = Value_profile.create targets in
  let _ = Spt_interp.Interp.run ~hooks:(Value_profile.hooks vp) prog in
  (* one of the carried values strides by 7, another (i) by 1 *)
  let strides =
    List.filter_map
      (fun (_, def) ->
        Option.map
          (fun p -> p.Value_profile.stride)
          (Value_profile.predictable vp ~func:"main" ~iid:def))
      candidates
  in
  Alcotest.(check bool) "stride 7 found" true (List.mem 7L strides);
  Alcotest.(check bool) "stride 1 found" true (List.mem 1L strides)

let test_value_profile_unpredictable () =
  let src =
    {|
int n = 100;
void main() {
  int i = 0;
  int x = 1;
  while (i < n) {
    x = (x * 1103515245 + 12345) & 1048575;
    i = i + 1;
  }
  print_int(x);
}
|}
  in
  let prog = compile src in
  List.iter (fun (_, f) -> Ssa.construct f) prog.Ir.funcs;
  let f = Ir.func_of_program prog "main" in
  let l = List.hd (Loops.find f) in
  let candidates = Spt_transform.Svp.candidates f l in
  let targets =
    List.map (fun (_, d) -> { Value_profile.tfunc = "main"; tiid = d }) candidates
  in
  let vp = Value_profile.create targets in
  let _ = Spt_interp.Interp.run ~hooks:(Value_profile.hooks vp) prog in
  (* the LCG-like chain must not be predictable (i's stride-1 is) *)
  List.iter
    (fun (_, def) ->
      match Value_profile.best_prediction vp ~func:"main" ~iid:def with
      | Some p when p.Value_profile.stride <> 1L ->
        Alcotest.(check bool)
          (Printf.sprintf "hit rate %.2f below bar" p.Value_profile.hit_rate)
          true
          (p.Value_profile.hit_rate < 0.5)
      | _ -> ())
    candidates

let suite =
  [
    Alcotest.test_case "edge counts" `Quick test_edge_counts;
    Alcotest.test_case "nested trip counts" `Quick test_trip_count_nested;
    Alcotest.test_case "dep: certain recurrence" `Quick test_dep_profile_cross;
    Alcotest.test_case "dep: rare conflicts" `Quick test_dep_profile_rare;
    Alcotest.test_case "dep: intra only" `Quick test_dep_profile_intra;
    Alcotest.test_case "dep: through calls" `Quick test_dep_profile_through_calls;
    Alcotest.test_case "value: stride" `Quick test_value_profile_stride;
    Alcotest.test_case "value: unpredictable" `Quick test_value_profile_unpredictable;
  ]
