(** Workload regression tests: each synthetic benchmark must keep the
    qualitative character it was built for (Table 1's IPC ordering and
    the presence/absence of speculative parallelism), with generous
    bounds so legitimate simulator tweaks don't thrash. *)

open Spt_driver

let base_results =
  lazy
    (List.map
       (fun w ->
         let prog =
           Pipeline.compile_base w.Spt_workloads.Suite.source
         in
         (w.Spt_workloads.Suite.name, Spt_tlsim.Tls_machine.run prog))
       Spt_workloads.Suite.all)

let ipc name =
  (List.assoc name (Lazy.force base_results)).Spt_tlsim.Tls_machine.ipc

let test_ipc_ranges () =
  (* loose absolute windows around the Table 1 targets *)
  List.iter
    (fun (name, lo, hi) ->
      let v = ipc name in
      Alcotest.(check bool)
        (Printf.sprintf "%s IPC %.2f in [%.2f, %.2f]" name v lo hi)
        true
        (v >= lo && v <= hi))
    [
      ("bzip2", 1.3, 2.0);
      ("crafty", 1.2, 1.9);
      ("gzip", 1.2, 1.9);
      ("mcf", 0.2, 0.6);
      ("vortex", 0.4, 0.9);
      ("twolf", 0.9, 1.5);
      ("vpr", 0.9, 1.6);
      ("parser", 0.9, 1.6);
    ]

let test_ipc_ordering () =
  (* the memory-bound codes sit clearly below the register-heavy ones *)
  Alcotest.(check bool) "mcf lowest" true (ipc "mcf" < ipc "vortex");
  Alcotest.(check bool) "vortex below gzip" true (ipc "vortex" < ipc "gzip");
  Alcotest.(check bool) "vortex below bzip2" true (ipc "vortex" < ipc "bzip2");
  Alcotest.(check bool) "mcf below everything" true
    (List.for_all
       (fun (n, r) ->
         n = "mcf" || r.Spt_tlsim.Tls_machine.ipc > ipc "mcf")
       (Lazy.force base_results))

let test_deterministic () =
  (* two independent base compiles+runs of the same workload agree *)
  let w = Spt_workloads.Suite.find "parser" in
  let run () =
    (Spt_tlsim.Tls_machine.run (Pipeline.compile_base w.Spt_workloads.Suite.source))
      .Spt_tlsim.Tls_machine.output
  in
  Alcotest.(check string) "deterministic" (run ()) (run ())

let test_speculation_profile () =
  (* bzip2's MTF core is serial: best gains stay small.  gzip's scan is
     the SVP showcase: best must find at least one SPT loop and win. *)
  let eval name config =
    Pipeline.evaluate ~config (Spt_workloads.Suite.find name).Spt_workloads.Suite.source
  in
  let gzip = eval "gzip" Config.best in
  Alcotest.(check bool) "gzip best finds loops" true (gzip.Pipeline.n_spt_loops >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "gzip best wins (%.2f)" gzip.Pipeline.speedup)
    true
    (gzip.Pipeline.speedup > 1.08);
  Alcotest.(check bool) "gzip used SVP" true
    (List.exists (fun lr -> lr.Pipeline.lr_svp) gzip.Pipeline.loops);
  let bzip2 = eval "bzip2" Config.best in
  Alcotest.(check bool)
    (Printf.sprintf "bzip2 stays near baseline (%.2f)" bzip2.Pipeline.speedup)
    true
    (bzip2.Pipeline.speedup > 0.97 && bzip2.Pipeline.speedup < 1.10)

let test_basic_finds_little () =
  (* the paper's conclusion: type-based aliasing plus edge profiling is
     not enough to identify speculative parallelism *)
  let speedups =
    List.map
      (fun w ->
        (Pipeline.evaluate ~config:Config.basic w.Spt_workloads.Suite.source)
          .Pipeline.speedup)
      (List.filter
         (fun w ->
           List.mem w.Spt_workloads.Suite.name [ "gzip"; "twolf"; "vpr" ])
         Spt_workloads.Suite.all)
  in
  let avg = Spt_util.Stats.mean speedups in
  Alcotest.(check bool)
    (Printf.sprintf "basic average near zero (%.3f)" avg)
    true
    (avg > 0.97 && avg < 1.05)

let suite =
  [
    Alcotest.test_case "IPC ranges" `Slow test_ipc_ranges;
    Alcotest.test_case "IPC ordering" `Slow test_ipc_ordering;
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "speculation profile" `Slow test_speculation_profile;
    Alcotest.test_case "basic finds little" `Slow test_basic_finds_little;
  ]
