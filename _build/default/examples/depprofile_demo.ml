(** Data-dependence profiling demo (§7.3).

    A table-update loop whose writes and reads touch the same array but
    almost never the same element across consecutive iterations.  A
    type-based static view (the `basic` compilation, which is all the
    paper's baseline compiler has on pointer-rich C) must assume a
    certain conflict and prices speculation out; the dependence
    profiler measures the real cross-iteration probability and the
    `best` compilation parallelizes the loop.

    Run with: dune exec examples/depprofile_demo.exe *)

let source =
  {|
int n = 30000;
int table[8192];
int keys[30000];
int checksum;

void main() {
  int i;
  srand(99);
  for (i = 0; i < n; i = i + 1) { keys[i] = rand() & 8191; }
  for (i = 0; i < 8192; i = i + 1) { table[i] = i; }

  /* scatter-update: the write index is data-dependent, conflicts
     between consecutive iterations are ~1/8192 */
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int k = keys[i];
    int v = table[k];
    table[k] = v * 2 + (k & 7) + 1;
    acc = acc + (v & 15);
  }
  checksum = acc + table[0] + table[8191];
  print_int(checksum);
}
|}

let describe label (e : Spt_driver.Pipeline.eval) =
  let open Spt_driver.Pipeline in
  Format.printf "%-28s speedup %+6.1f%%  SPT loops %d@." label
    ((e.speedup -. 1.0) *. 100.0)
    e.n_spt_loops;
  List.iter
    (fun lr ->
      if lr.lr_weight > 100000 then
        Format.printf "    hot loop %s@@bb%d: %s@." lr.lr_func lr.lr_header
          (match lr.lr_decision with
          | Selected ->
            Printf.sprintf "selected (cost %.2f)"
              (Option.value ~default:0.0 lr.lr_cost)
          | Rejected r -> Spt_transform.Select.string_of_reason r))
    e.loops

let () =
  Format.printf "=== Dependence profiling separates rare from certain conflicts ===@.@.";
  describe "basic (type-based alias):"
    (Spt_driver.Pipeline.evaluate ~config:Spt_driver.Config.basic source);
  Format.printf "@.";
  describe "best (dependence profile):"
    (Spt_driver.Pipeline.evaluate ~config:Spt_driver.Config.best source);
  Format.printf
    "@.The loop is identical; only the compiler's knowledge of how often@.\
     table[k] actually collides across iterations changed.@."
