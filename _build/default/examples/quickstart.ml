(** Quickstart: compile a small MiniC program with the cost-driven SPT
    pipeline and compare it against the non-SPT baseline on the
    synthetic TLS machine.

    Run with: dune exec examples/quickstart.exe *)

let source =
  {|
int n = 20000;
int prices[20000];
int smoothed[20000];
int checksum;

void main() {
  int i;
  srand(7);
  for (i = 0; i < n; i = i + 1) { prices[i] = 1000 + (rand() & 255); }

  /* a smoothing pass: every iteration is independent except for the
     induction variable, which the compiler moves into the pre-fork
     region -- textbook speculative parallelism */
  for (i = 2; i < n - 2; i = i + 1) {
    smoothed[i] =
      (prices[i - 2] + prices[i - 1] * 3 + prices[i] * 4 + prices[i + 1] * 3
      + prices[i + 2])
      / 12;
  }

  /* a running maximum: the carried value rarely changes, so the cost
     model prices speculation low and the loop parallelizes too */
  int peak = 0;
  for (i = 0; i < n; i = i + 1) {
    if (smoothed[i] > peak) { peak = smoothed[i]; }
  }

  checksum = peak + smoothed[n / 2];
  print_int(checksum);
}
|}

let () =
  Format.printf "=== Cost-driven speculative parallelization: quickstart ===@.@.";
  let config = Spt_driver.Config.best in
  let e = Spt_driver.Pipeline.evaluate ~config source in
  let open Spt_driver.Pipeline in
  Format.printf "compiler configuration : %s@." e.config_name;
  Format.printf "program output matches : %b@." e.outputs_match;
  Format.printf "baseline               : %.0f cycles (IPC %.2f)@."
    e.base.Spt_tlsim.Tls_machine.cycles e.base.Spt_tlsim.Tls_machine.ipc;
  Format.printf "SPT                    : %.0f cycles@."
    e.spt.Spt_tlsim.Tls_machine.cycles;
  Format.printf "speedup                : %+.1f%%@.@."
    ((e.speedup -. 1.0) *. 100.0);
  Format.printf "Loop decisions:@.";
  List.iter
    (fun lr ->
      Format.printf "  %s@@bb%d  body %.0f ops/iter, trip %.0f  ->  %s@."
        lr.lr_func lr.lr_header lr.lr_body_size lr.lr_trip
        (match lr.lr_decision with
        | Selected ->
          Printf.sprintf "SPT loop (misspeculation cost %.1f, pre-fork %d ops)"
            (Option.value ~default:0.0 lr.lr_cost)
            (Option.value ~default:0 lr.lr_prefork_size)
        | Rejected reason -> Spt_transform.Select.string_of_reason reason))
    e.loops;
  Format.printf "@.Per-loop behaviour on the TLS machine:@.";
  print_string (Spt_driver.Report.fig18 [ ("quickstart", e) ])
