examples/depprofile_demo.mli:
