examples/svp_demo.ml: Format List Option Spt_driver
