examples/depprofile_demo.ml: Format List Option Printf Spt_driver Spt_transform
