examples/quickstart.ml: Format List Option Printf Spt_driver Spt_tlsim Spt_transform
