examples/quickstart.mli:
