examples/paper_example.ml: Cost_model Format Hashtbl List Option Printf Spt_cost Spt_driver Spt_transform
