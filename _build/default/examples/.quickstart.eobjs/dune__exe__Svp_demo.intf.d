examples/svp_demo.mli:
