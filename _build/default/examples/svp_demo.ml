(** Software value prediction demo (§7.2, Fig. 13).

    A scan loop advances its cursor by a data-dependent length that is
    almost always the same.  Plain code reordering cannot move the
    cursor update (its computation depends on the whole body), so:

    - compiled *without* SVP, the loop's misspeculation cost stays
      high and it is not speculatively parallelized;
    - compiled *with* SVP, the value profiler detects the stride, the
      compiler inserts prediction + check/recovery code (Fig. 13), and
      the carried register is written before the fork — the loop
      becomes an SPT loop and wins.

    Run with: dune exec examples/svp_demo.exe *)

let source =
  {|
int n = 40000;
int data[40000];
int out[40000];
int checksum;

void main() {
  int i;
  srand(2026);
  for (i = 0; i < n; i = i + 1) { data[i] = rand() & 4095; }

  int pos = 0;
  int emitted = 0;
  while (pos < n - 16) {
    /* a beefy record decode */
    int v = data[pos] * 3 + data[pos + 1] * 5 + data[pos + 2] * 7;
    int w = data[pos + 3] * 11 + data[pos + 4] * 13 + data[pos + 5];
    int u = (v ^ w) + (v >> 3) + (w >> 5) + data[pos + 6] + data[pos + 7];
    int q = u * 3 + v * w + (u & 255) + (v % 97) + (w % 89);
    out[emitted & 32767] = v + w + u + q;
    emitted = emitted + 1;
    /* record length: 2 words, with one rare escape */
    int step = 2;
    if ((q & 2047) == 3) { step = 5; }
    pos = pos + step;
  }
  checksum = emitted;
  print_int(checksum);
}
|}

let describe label (e : Spt_driver.Pipeline.eval) =
  let open Spt_driver.Pipeline in
  Format.printf "%-24s speedup %+6.1f%%  SPT loops %d  (outputs match: %b)@."
    label
    ((e.speedup -. 1.0) *. 100.0)
    e.n_spt_loops e.outputs_match;
  List.iter
    (fun lr ->
      match lr.lr_decision with
      | Selected ->
        Format.printf "    %s@@bb%d selected%s, cost %.2f@." lr.lr_func
          lr.lr_header
          (if lr.lr_svp then " WITH VALUE PREDICTION" else "")
          (Option.value ~default:0.0 lr.lr_cost)
      | Rejected _ -> ())
    e.loops

let () =
  Format.printf "=== Software value prediction (Fig. 13) ===@.@.";
  let no_svp = { Spt_driver.Config.best with Spt_driver.Config.use_svp = false; name = "best-without-svp" } in
  describe "without SVP:" (Spt_driver.Pipeline.evaluate ~config:no_svp source);
  Format.printf "@.";
  describe "with SVP:" (Spt_driver.Pipeline.evaluate ~config:Spt_driver.Config.best source)
