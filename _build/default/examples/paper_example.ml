(** The paper's worked examples, replayed.

    1. Fig. 5/6: the dependence/cost-graph example whose partition
       {D pre-fork} has misspeculation cost 0.58 (§4.2.5), evaluated
       with the paper's exact propagation rule.
    2. Fig. 2: the [cost0 += fabs(error[i][j] - p[j])] loop, compiled
       end to end: the framework moves the induction update into the
       pre-fork region exactly as the paper's transformed code does
       (the [temp_i] pattern appears as a coalesced carried register).

    Run with: dune exec examples/paper_example.exe *)

open Spt_cost

let fig5 () =
  Format.printf "=== Fig. 5/6: misspeculation cost of the worked example ===@.@.";
  (* nodes A..F; D, E, F are the violation candidates *)
  let a, b, c, d, e, f = (0, 1, 2, 3, 4, 5) in
  let name = [ (a, "A"); (b, "B"); (c, "C"); (d, "D"); (e, "E"); (f, "F") ] in
  let pseudo = Cost_model.pseudo_of_vc in
  let initial =
    [
      { Cost_model.gsrc = pseudo d; gdst = a; gprob = 0.2 };
      { Cost_model.gsrc = pseudo e; gdst = b; gprob = 0.1 };
      { Cost_model.gsrc = pseudo f; gdst = c; gprob = 0.2 };
    ]
  in
  let intra =
    [
      { Cost_model.gsrc = b; gdst = c; gprob = 0.5 };
      { Cost_model.gsrc = c; gdst = e; gprob = 1.0 };
    ]
  in
  (* partition: only D in the pre-fork region *)
  let vc_prob p = if Cost_model.vc_of_pseudo p = d then 0.0 else 1.0 in
  let v =
    Cost_model.compute ~combine:`Independent ~op_nodes:[ a; b; c; d; e; f ]
      ~vc_pseudo:(List.map pseudo [ d; e; f ])
      ~initial ~intra ~vc_prob ()
  in
  let get n = Option.value ~default:0.0 (Hashtbl.find_opt v n) in
  List.iter
    (fun (n, nm) -> Format.printf "  v(%s) = %.2f@." nm (get n))
    name;
  let total = List.fold_left (fun acc (n, _) -> acc +. get n) 0.0 name in
  Format.printf "  misspeculation cost (unit operation costs) = %.2f@." total;
  Format.printf "  paper's value: 0.58@.@."

let fig2_source =
  (* the paper's Fig. 2 loop, with error[i][j] linearized (MiniC arrays
     are one-dimensional) and a driver around it *)
  {|
int N = 120;
float error[14400];
float p[120];
float cost_total;

void main() {
  int i = 0;
  int k;
  srand(1);
  for (k = 0; k < 14400; k = k + 1) {
    error[k] = float_of_int(rand() & 255) * 0.01;
  }
  for (k = 0; k < 120; k = k + 1) {
    p[k] = float_of_int(rand() & 255) * 0.01;
  }
  float cost = 0.0;
  while (i < N) {
    float cost0 = 0.0;
    int j;
    for (j = 0; j < i; j = j + 1) {
      cost0 = cost0 + fabs(error[i * 120 + j] - p[j]);
    }
    cost = cost + cost0;
    i = i + 1;
  }
  cost_total = cost;
  print_float(cost);
}
|}

let fig2 () =
  Format.printf "=== Fig. 2: SPT transformation of the paper's loop ===@.@.";
  let e = Spt_driver.Pipeline.evaluate ~config:Spt_driver.Config.best fig2_source in
  let open Spt_driver.Pipeline in
  Format.printf "output preserved: %b@." e.outputs_match;
  List.iter
    (fun lr ->
      Format.printf "  loop %s@@bb%d: %s@." lr.lr_func lr.lr_header
        (match lr.lr_decision with
        | Selected ->
          Printf.sprintf
            "transformed into an SPT loop (cost %.2f, pre-fork %d ops) — the \
             induction update moved before SPT_FORK, as in Fig. 2(b)"
            (Option.value ~default:0.0 lr.lr_cost)
            (Option.value ~default:0 lr.lr_prefork_size)
        | Rejected r -> Spt_transform.Select.string_of_reason r))
    e.loops;
  Format.printf "speedup over the non-SPT base: %+.1f%%@."
    ((e.speedup -. 1.0) *. 100.0)

let () =
  fig5 ();
  fig2 ()
