lib/cost/cost_model.ml: Depgraph Float Format Hashtbl Int Ir Ir_pretty List Option Printf Set Spt_depgraph Spt_ir Spt_util
