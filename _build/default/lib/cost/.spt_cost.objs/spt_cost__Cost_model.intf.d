lib/cost/cost_model.mli: Depgraph Hashtbl Int Set Spt_depgraph
