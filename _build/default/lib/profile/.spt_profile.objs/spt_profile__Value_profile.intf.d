lib/profile/value_profile.mli: Interp Spt_interp
