lib/profile/dep_profile.ml: Hashtbl Interp Ir List Loops Option Spt_interp Spt_ir
