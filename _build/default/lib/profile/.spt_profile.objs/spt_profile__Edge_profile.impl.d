lib/profile/edge_profile.ml: Cfg Hashtbl Interp Ir List Loops Option Spt_interp Spt_ir
