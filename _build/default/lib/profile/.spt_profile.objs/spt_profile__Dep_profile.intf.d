lib/profile/dep_profile.mli: Interp Ir Spt_interp Spt_ir
