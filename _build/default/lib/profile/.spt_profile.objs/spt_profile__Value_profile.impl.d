lib/profile/value_profile.ml: Eval Hashtbl Int64 Interp Ir List Option Printf Spt_interp Spt_ir Sys
