lib/profile/edge_profile.mli: Interp Ir Loops Spt_interp Spt_ir
