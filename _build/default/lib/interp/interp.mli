(** Reference interpreter for the IR, with instrumentation hooks.

    The interpreter is the ground truth for program semantics: an
    SPT-transformed program must print the same output as the original
    ([SPT_FORK]/[SPT_KILL] are sequential no-ops).  The hooks expose
    the full dynamic event stream on which the profilers (§4.1, §7.2,
    §7.3) and the trace-driven TLS timing machine are built. *)

open Spt_ir

type value = Eval.value

(** Register and memory effects of one executed instruction.  Addresses
    are element-granular (see {!Layout.element_address}). *)
type effects = {
  loads : (int * value) list;  (** (address, value read) *)
  stores : (int * value) list;  (** (address, value written) *)
  defs : (Ir.var * value) list;
  uses : (Ir.var * value) list;
}

val no_effects : effects

type hooks = {
  on_instr : Ir.func -> int -> Ir.instr -> effects -> unit;
      (** fires after each instruction; callee instructions fire with
          their own function and blocks *)
  on_block : Ir.func -> int -> unit;  (** block entry *)
  on_edge : Ir.func -> src:int -> dst:int -> unit;  (** taken CFG edge *)
  on_branch : Ir.func -> int -> taken:bool -> unit;
      (** conditional-branch outcome in the given block *)
  on_enter : Ir.func -> unit;  (** function entry (after the caller's
      [on_instr] for the call instruction) *)
  on_exit : Ir.func -> unit;  (** function return *)
}

val null_hooks : hooks

(** Fan one event stream out to several consumers. *)
val combine_hooks : hooks list -> hooks

exception Runtime_error of string

type result = {
  return_value : value option;
  output : string;  (** everything the print builtins wrote *)
  dynamic_instrs : int;
}

(** Execute [main].  Deterministic: the [rand] builtin is a fixed-seed
    LCG ([srand] reseeds it).
    @raise Runtime_error on out-of-bounds access, division by zero or
    exceeding [max_steps]. *)
val run : ?hooks:hooks -> ?max_steps:int -> Ir.program -> result

(** Front-end convenience: parse, type-check, lower and run. *)
val run_source : ?hooks:hooks -> ?max_steps:int -> string -> result
