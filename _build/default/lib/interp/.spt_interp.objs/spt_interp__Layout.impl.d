lib/interp/layout.ml: Hashtbl Ir List Printf Spt_ir
