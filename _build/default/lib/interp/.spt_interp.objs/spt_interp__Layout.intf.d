lib/interp/layout.mli: Ir Spt_ir
