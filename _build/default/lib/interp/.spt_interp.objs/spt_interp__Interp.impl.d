lib/interp/interp.ml: Array Buffer Eval Float Format Int64 Ir Layout List Lower Printf Spt_ir Spt_srclang Spt_util
