lib/interp/interp.mli: Eval Ir Spt_ir
