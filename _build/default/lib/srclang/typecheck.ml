(** Type checker for MiniC.

    Checks and annotates the AST in place ([ety] fields).  The type
    system is deliberately rigid — no implicit int/float conversion
    except through the [int_of_float]/[float_of_int] builtins — because
    the IR keeps integer and float registers apart and the dependence
    machinery relies on every operation having one unambiguous type. *)

exception Type_error of string * Ast.loc

let error loc fmt =
  Format.kasprintf (fun msg -> raise (Type_error (msg, loc))) fmt

type env = {
  globals : (string, Ast.ty) Hashtbl.t;
  funcs : (string, Ast.ty list * Ast.ty) Hashtbl.t;
  mutable scopes : (string, Ast.ty) Hashtbl.t list;  (** innermost first *)
  mutable current_ret : Ast.ty;
  mutable loop_depth : int;
}

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes
let pop_scope env =
  match env.scopes with
  | [] -> invalid_arg "Typecheck.pop_scope: no scope"
  | _ :: rest -> env.scopes <- rest

let declare_local env loc name ty =
  match env.scopes with
  | [] -> invalid_arg "Typecheck.declare_local: no scope"
  | scope :: _ ->
    if Hashtbl.mem scope name then error loc "redeclaration of %s" name;
    Hashtbl.replace scope name ty

let lookup_var env loc name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some ty -> Some ty
      | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some ty -> ty
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some ty -> ty
    | None -> error loc "undeclared variable %s" name)

let is_scalar = function Ast.Tint | Ast.Tfloat -> true | _ -> false

let rec check_expr env (e : Ast.expr) : Ast.ty =
  let ty = check_expr_desc env e in
  e.ety <- Some ty;
  ty

and check_expr_desc env e =
  let loc = e.Ast.eloc in
  match e.Ast.edesc with
  | Ast.Int_lit _ -> Ast.Tint
  | Ast.Float_lit _ -> Ast.Tfloat
  | Ast.Var name -> (
    match lookup_var env loc name with
    | (Ast.Tint | Ast.Tfloat) as ty -> ty
    | ty -> error loc "%s has type %s, not a scalar" name (Ast.string_of_ty ty))
  | Ast.Index (name, idx) -> (
    let ity = check_expr env idx in
    if ity <> Ast.Tint then error loc "array index must be int";
    match lookup_var env loc name with
    | Ast.Tarr elt -> elt
    | ty -> error loc "%s has type %s, not an array" name (Ast.string_of_ty ty))
  | Ast.Call (name, args) ->
    let param_tys, ret =
      match List.assoc_opt name Ast.builtins with
      | Some (ps, r) -> (ps, r)
      | None -> (
        match Hashtbl.find_opt env.funcs name with
        | Some sg -> sg
        | None -> error loc "undeclared function %s" name)
    in
    if List.length args <> List.length param_tys then
      error loc "%s expects %d arguments, got %d" name (List.length param_tys)
        (List.length args);
    List.iter2
      (fun arg pty ->
        match pty with
        | Ast.Tarr elt -> (
          (* Arrays are passed by name only. *)
          match arg.Ast.edesc with
          | Ast.Var aname -> (
            match lookup_var env arg.Ast.eloc aname with
            | Ast.Tarr aelt when aelt = elt -> arg.Ast.ety <- Some (Ast.Tarr aelt)
            | ty ->
              error arg.Ast.eloc
                "argument %s to %s has type %s, expected %s array" aname name
                (Ast.string_of_ty ty) (Ast.string_of_ty elt))
          | _ -> error arg.Ast.eloc "array argument to %s must be a name" name)
        | pty ->
          let aty = check_expr env arg in
          if aty <> pty then
            error arg.Ast.eloc "argument to %s has type %s, expected %s" name
              (Ast.string_of_ty aty) (Ast.string_of_ty pty))
      args param_tys;
    ret
  | Ast.Unary (op, sub) -> (
    let sty = check_expr env sub in
    match (op, sty) with
    | Ast.Neg, (Ast.Tint | Ast.Tfloat) -> sty
    | Ast.Lnot, Ast.Tint -> Ast.Tint
    | Ast.Bnot, Ast.Tint -> Ast.Tint
    | _ ->
      error loc "operator %s cannot be applied to %s" (Ast.string_of_unop op)
        (Ast.string_of_ty sty))
  | Ast.Binary (op, l, r) -> (
    let lt = check_expr env l and rt = check_expr env r in
    if lt <> rt then
      error loc "operands of %s have mismatched types %s and %s"
        (Ast.string_of_binop op) (Ast.string_of_ty lt) (Ast.string_of_ty rt);
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
      if is_scalar lt then lt
      else error loc "arithmetic on non-scalar type %s" (Ast.string_of_ty lt)
    | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Land
    | Ast.Lor ->
      if lt = Ast.Tint then Ast.Tint
      else error loc "%s requires int operands" (Ast.string_of_binop op)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
      if is_scalar lt then Ast.Tint
      else error loc "comparison of non-scalar type %s" (Ast.string_of_ty lt))

let check_lvalue env loc = function
  | Ast.Lvar name -> (
    match lookup_var env loc name with
    | (Ast.Tint | Ast.Tfloat) as ty -> ty
    | ty -> error loc "cannot assign to %s of type %s" name (Ast.string_of_ty ty))
  | Ast.Lindex (name, idx) -> (
    let ity = check_expr env idx in
    if ity <> Ast.Tint then error loc "array index must be int";
    match lookup_var env loc name with
    | Ast.Tarr elt -> elt
    | ty -> error loc "%s has type %s, not an array" name (Ast.string_of_ty ty))

let rec check_stmt env (s : Ast.stmt) =
  let loc = s.Ast.sloc in
  match s.Ast.sdesc with
  | Ast.Decl (ty, name, init) ->
    if not (is_scalar ty) then
      error loc "local %s must be scalar (arrays are global-only)" name;
    (match init with
    | Some e ->
      let ety = check_expr env e in
      if ety <> ty then
        error loc "initializer of %s has type %s, expected %s" name
          (Ast.string_of_ty ety) (Ast.string_of_ty ty)
    | None -> ());
    declare_local env loc name ty
  | Ast.Assign (lv, e) ->
    let lty = check_lvalue env loc lv in
    let ety = check_expr env e in
    if lty <> ety then
      error loc "assignment of %s value to %s lvalue" (Ast.string_of_ty ety)
        (Ast.string_of_ty lty)
  | Ast.If (cond, then_b, else_b) ->
    let cty = check_expr env cond in
    if cty <> Ast.Tint then error loc "condition must be int";
    check_block env then_b;
    check_block env else_b
  | Ast.While (cond, body) ->
    let cty = check_expr env cond in
    if cty <> Ast.Tint then error loc "condition must be int";
    env.loop_depth <- env.loop_depth + 1;
    check_block env body;
    env.loop_depth <- env.loop_depth - 1
  | Ast.Do_while (body, cond) ->
    env.loop_depth <- env.loop_depth + 1;
    check_block env body;
    env.loop_depth <- env.loop_depth - 1;
    let cty = check_expr env cond in
    if cty <> Ast.Tint then error loc "condition must be int"
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    Option.iter (check_stmt env) init;
    Option.iter
      (fun c ->
        if check_expr env c <> Ast.Tint then error loc "condition must be int")
      cond;
    env.loop_depth <- env.loop_depth + 1;
    check_block env body;
    env.loop_depth <- env.loop_depth - 1;
    Option.iter (check_stmt env) step;
    pop_scope env
  | Ast.Return None ->
    if env.current_ret <> Ast.Tvoid then error loc "missing return value"
  | Ast.Return (Some e) ->
    let ety = check_expr env e in
    if ety <> env.current_ret then
      error loc "return type %s, expected %s" (Ast.string_of_ty ety)
        (Ast.string_of_ty env.current_ret)
  | Ast.Expr_stmt e -> ignore (check_expr env e)
  | Ast.Break | Ast.Continue ->
    if env.loop_depth = 0 then error loc "break/continue outside loop"
  | Ast.Block body -> check_block env body

and check_block env body =
  push_scope env;
  List.iter (check_stmt env) body;
  pop_scope env

let check_fundef env (f : Ast.fundef) =
  env.current_ret <- f.Ast.fret;
  env.loop_depth <- 0;
  push_scope env;
  List.iter
    (fun (ty, name) ->
      (match ty with
      | Ast.Tint | Ast.Tfloat | Ast.Tarr Ast.Tint | Ast.Tarr Ast.Tfloat -> ()
      | _ -> error f.Ast.floc "parameter %s has invalid type" name);
      declare_local env f.Ast.floc name ty)
    f.Ast.fparams;
  List.iter (check_stmt env) f.Ast.fbody;
  pop_scope env

(** Type-check a whole program in place.  The program must define a
    [main] function with no parameters.
    @raise Type_error on any violation. *)
let check (prog : Ast.program) =
  let env =
    {
      globals = Hashtbl.create 64;
      funcs = Hashtbl.create 64;
      scopes = [];
      current_ret = Ast.Tvoid;
      loop_depth = 0;
    }
  in
  List.iter
    (fun g ->
      let name, ty =
        match g with
        | Ast.Gscalar (ty, name, init) ->
          if not (is_scalar ty) then
            error Ast.no_loc "global scalar %s must be int or float" name;
          (match init with
          | Some e ->
            let ety = check_expr env e in
            if ety <> ty then
              error e.Ast.eloc "initializer type mismatch for %s" name
          | None -> ());
          (name, ty)
        | Ast.Garray (ty, name, size, init) ->
          if not (is_scalar ty) then
            error Ast.no_loc "array %s must hold int or float" name;
          if size <= 0 then error Ast.no_loc "array %s has size %d" name size;
          (match init with
          | Some vals when List.length vals > size ->
            error Ast.no_loc "too many initializers for %s" name
          | _ -> ());
          (name, Ast.Tarr ty)
      in
      if Hashtbl.mem env.globals name then
        error Ast.no_loc "redeclaration of global %s" name;
      Hashtbl.replace env.globals name ty)
    prog.Ast.globals;
  List.iter
    (fun (f : Ast.fundef) ->
      if Hashtbl.mem env.funcs f.Ast.fname || Ast.is_builtin f.Ast.fname then
        error f.Ast.floc "redeclaration of function %s" f.Ast.fname;
      Hashtbl.replace env.funcs f.Ast.fname
        (List.map fst f.Ast.fparams, f.Ast.fret))
    prog.Ast.funcs;
  (match Hashtbl.find_opt env.funcs "main" with
  | Some ([], _) -> ()
  | Some _ -> error Ast.no_loc "main must take no parameters"
  | None -> error Ast.no_loc "program has no main function");
  List.iter (check_fundef env) prog.Ast.funcs

(** [parse_and_check src] is the front-end entry point: lex, parse and
    type-check [src]. *)
let parse_and_check src =
  let prog = Parser.parse_program src in
  check prog;
  prog
