(** Pretty-printer for MiniC ASTs.

    Round-trips with the parser: [Parser.parse_program (to_string p)]
    yields a structurally equal program (a property the test-suite
    checks with qcheck-generated programs). *)

open Format

let rec pp_expr fmt (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Int_lit n -> fprintf fmt "%Ld" n
  | Ast.Float_lit f ->
    (* Keep a decimal point so the literal re-lexes as a float. *)
    let s = sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then fprintf fmt "%s" s
    else fprintf fmt "%s.0" s
  | Ast.Var v -> fprintf fmt "%s" v
  | Ast.Index (a, i) -> fprintf fmt "%s[%a]" a pp_expr i
  | Ast.Call (f, args) ->
    fprintf fmt "%s(%a)" f
      (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_expr)
      args
  | Ast.Unary (op, sub) -> fprintf fmt "%s(%a)" (Ast.string_of_unop op) pp_expr sub
  | Ast.Binary (op, l, r) ->
    fprintf fmt "(%a %s %a)" pp_expr l (Ast.string_of_binop op) pp_expr r

let pp_lvalue fmt = function
  | Ast.Lvar v -> fprintf fmt "%s" v
  | Ast.Lindex (a, i) -> fprintf fmt "%s[%a]" a pp_expr i

let rec pp_stmt fmt (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl (ty, name, None) -> fprintf fmt "%s %s;" (Ast.string_of_ty ty) name
  | Ast.Decl (ty, name, Some e) ->
    fprintf fmt "%s %s = %a;" (Ast.string_of_ty ty) name pp_expr e
  | Ast.Assign (lv, e) -> fprintf fmt "%a = %a;" pp_lvalue lv pp_expr e
  | Ast.If (c, t, []) ->
    fprintf fmt "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_block t
  | Ast.If (c, t, e) ->
    fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c
      pp_block t pp_block e
  | Ast.While (c, body) ->
    fprintf fmt "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_block body
  | Ast.Do_while (body, c) ->
    fprintf fmt "@[<v 2>do {%a@]@,} while (%a);" pp_block body pp_expr c
  | Ast.For (init, cond, step, body) ->
    let pp_opt_simple fmt = function
      | None -> ()
      | Some s -> pp_simple fmt s
    in
    let pp_opt_expr fmt = function None -> () | Some e -> pp_expr fmt e in
    fprintf fmt "@[<v 2>for (%a; %a; %a) {%a@]@,}" pp_opt_simple init
      pp_opt_expr cond pp_opt_simple step pp_block body
  | Ast.Return None -> fprintf fmt "return;"
  | Ast.Return (Some e) -> fprintf fmt "return %a;" pp_expr e
  | Ast.Expr_stmt e -> fprintf fmt "%a;" pp_expr e
  | Ast.Break -> fprintf fmt "break;"
  | Ast.Continue -> fprintf fmt "continue;"
  | Ast.Block body -> fprintf fmt "@[<v 2>{%a@]@,}" pp_block body

(* A simple statement inside a for-header: same as pp_stmt but without
   the trailing semicolon. *)
and pp_simple fmt (s : Ast.stmt) =
  let str = asprintf "%a" pp_stmt s in
  let str =
    if String.length str > 0 && str.[String.length str - 1] = ';' then
      String.sub str 0 (String.length str - 1)
    else str
  in
  pp_print_string fmt str

and pp_block fmt body =
  List.iter (fun s -> fprintf fmt "@,%a" pp_stmt s) body

let pp_global fmt = function
  | Ast.Gscalar (ty, name, None) ->
    fprintf fmt "%s %s;" (Ast.string_of_ty ty) name
  | Ast.Gscalar (ty, name, Some e) ->
    fprintf fmt "%s %s = %a;" (Ast.string_of_ty ty) name pp_expr e
  | Ast.Garray (ty, name, size, None) ->
    fprintf fmt "%s %s[%d];" (Ast.string_of_ty ty) name size
  | Ast.Garray (ty, name, size, Some init) ->
    fprintf fmt "%s %s[%d] = {%s};" (Ast.string_of_ty ty) name size
      (String.concat ", " (List.map Int64.to_string init))

let pp_param fmt (ty, name) =
  match ty with
  | Ast.Tarr elt -> fprintf fmt "%s %s[]" (Ast.string_of_ty elt) name
  | ty -> fprintf fmt "%s %s" (Ast.string_of_ty ty) name

let pp_fundef fmt (f : Ast.fundef) =
  fprintf fmt "@[<v 2>%s %s(%a) {%a@]@,}" (Ast.string_of_ty f.Ast.fret)
    f.Ast.fname
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_param)
    f.Ast.fparams pp_block f.Ast.fbody

let pp_program fmt (p : Ast.program) =
  fprintf fmt "@[<v>";
  List.iter (fun g -> fprintf fmt "%a@," pp_global g) p.Ast.globals;
  List.iter (fun f -> fprintf fmt "@,%a@," pp_fundef f) p.Ast.funcs;
  fprintf fmt "@]"

let to_string p = asprintf "%a" pp_program p
