lib/srclang/src_pretty.ml: Ast Format Int64 List String
