lib/srclang/parser.ml: Ast Int64 Lexer List Printf
