lib/srclang/ast.ml: Format List
