lib/srclang/typecheck.mli: Ast
