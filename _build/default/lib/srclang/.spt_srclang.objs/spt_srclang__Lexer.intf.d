lib/srclang/lexer.mli: Ast
