lib/srclang/lexer.ml: Ast Int64 List Printf String
