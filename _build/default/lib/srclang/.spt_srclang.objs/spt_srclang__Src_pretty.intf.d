lib/srclang/src_pretty.mli: Ast Format
