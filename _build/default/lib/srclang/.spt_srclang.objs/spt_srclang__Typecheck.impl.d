lib/srclang/typecheck.ml: Ast Format Hashtbl List Option Parser
