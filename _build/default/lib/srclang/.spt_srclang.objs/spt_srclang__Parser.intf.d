lib/srclang/parser.mli: Ast
