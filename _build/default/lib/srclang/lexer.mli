(** Hand-written lexer for MiniC: C-style comments, decimal/hex integer
    literals, float literals with a decimal point and optional
    exponent. *)

type token =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AMPAMP
  | BARBAR
  | AMP
  | BAR
  | CARET
  | BANG
  | TILDE
  | SHL
  | SHR
  | PLUSPLUS
  | MINUSMINUS
  | PLUSEQ
  | MINUSEQ
  | EOF

val string_of_token : token -> string

exception Lex_error of string * Ast.loc

(** Incremental interface. *)
type t

val create : string -> t

(** Next token with its start location.
    @raise Lex_error on malformed input. *)
val next : t -> token * Ast.loc

(** Tokenize the whole input, including the final [EOF]. *)
val tokenize : string -> (token * Ast.loc) list
