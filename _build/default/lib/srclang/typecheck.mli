(** Type checker for MiniC.  Deliberately rigid — no implicit int/float
    conversion — because the IR keeps integer and float registers apart
    and the dependence machinery relies on unambiguous operation
    types. *)

exception Type_error of string * Ast.loc

(** Check and annotate the AST in place ([ety] fields).  Programs must
    define a parameterless [main].
    @raise Type_error on any violation. *)
val check : Ast.program -> unit

(** Front-end entry point: lex, parse and type-check. *)
val parse_and_check : string -> Ast.program
