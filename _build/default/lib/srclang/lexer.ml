(** Hand-written lexer for MiniC.

    Produces a token stream with source locations.  Comments are C
    style ([/* ... */] and [// ...]).  Integer literals are 64-bit
    decimals (optionally hex with [0x]); float literals require a
    decimal point. *)

type token =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AMPAMP
  | BARBAR
  | AMP
  | BAR
  | CARET
  | BANG
  | TILDE
  | SHL
  | SHR
  | PLUSPLUS
  | MINUSMINUS
  | PLUSEQ
  | MINUSEQ
  | EOF

let keyword_table =
  [
    ("int", KW_INT);
    ("float", KW_FLOAT);
    ("void", KW_VOID);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("for", KW_FOR);
    ("return", KW_RETURN);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
  ]

let string_of_token = function
  | INT_LIT n -> Int64.to_string n
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | AMP -> "&"
  | BAR -> "|"
  | CARET -> "^"
  | BANG -> "!"
  | TILDE -> "~"
  | SHL -> "<<"
  | SHR -> ">>"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | EOF -> "<eof>"

exception Lex_error of string * Ast.loc

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let create src = { src; pos = 0; line = 1; bol = 0 }

let loc t = { Ast.line = t.line; col = t.pos - t.bol + 1 }

let error t msg = raise (Lex_error (msg, loc t))

let peek_char t = if t.pos >= String.length t.src then None else Some t.src.[t.pos]

let peek_char2 t =
  if t.pos + 1 >= String.length t.src then None else Some t.src.[t.pos + 1]

let advance t =
  (match peek_char t with
  | Some '\n' ->
    t.line <- t.line + 1;
    t.bol <- t.pos + 1
  | _ -> ());
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_ws_and_comments t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_ws_and_comments t
  | Some '/' -> (
    match peek_char2 t with
    | Some '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do
        advance t
      done;
      skip_ws_and_comments t
    | Some '*' ->
      advance t;
      advance t;
      let rec skip () =
        match (peek_char t, peek_char2 t) with
        | Some '*', Some '/' ->
          advance t;
          advance t
        | Some _, _ ->
          advance t;
          skip ()
        | None, _ -> error t "unterminated comment"
      in
      skip ();
      skip_ws_and_comments t
    | _ -> ())
  | _ -> ()

let lex_number t =
  let start = t.pos in
  if peek_char t = Some '0' && (peek_char2 t = Some 'x' || peek_char2 t = Some 'X')
  then begin
    advance t;
    advance t;
    let hstart = t.pos in
    while (match peek_char t with Some c -> is_hex_digit c | None -> false) do
      advance t
    done;
    if t.pos = hstart then error t "malformed hex literal";
    let s = String.sub t.src start (t.pos - start) in
    INT_LIT (Int64.of_string s)
  end
  else begin
    while (match peek_char t with Some c -> is_digit c | None -> false) do
      advance t
    done;
    let is_float =
      peek_char t = Some '.'
      && (match peek_char2 t with Some c -> is_digit c | None -> false)
    in
    if is_float then begin
      advance t;
      while (match peek_char t with Some c -> is_digit c | None -> false) do
        advance t
      done;
      (* optional exponent *)
      (match peek_char t with
      | Some ('e' | 'E') ->
        advance t;
        (match peek_char t with
        | Some ('+' | '-') -> advance t
        | _ -> ());
        while (match peek_char t with Some c -> is_digit c | None -> false) do
          advance t
        done
      | _ -> ());
      FLOAT_LIT (float_of_string (String.sub t.src start (t.pos - start)))
    end
    else INT_LIT (Int64.of_string (String.sub t.src start (t.pos - start)))
  end

let lex_ident t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_ident_char c | None -> false) do
    advance t
  done;
  let s = String.sub t.src start (t.pos - start) in
  match List.assoc_opt s keyword_table with Some kw -> kw | None -> IDENT s

(** [next t] is the next token together with its start location. *)
let next t =
  skip_ws_and_comments t;
  let l = loc t in
  let tok =
    match peek_char t with
    | None -> EOF
    | Some c when is_digit c -> lex_number t
    | Some c when is_ident_start c -> lex_ident t
    | Some c ->
      let two tok = advance t; advance t; tok in
      let one tok = advance t; tok in
      (match (c, peek_char2 t) with
      | '<', Some '=' -> two LE
      | '<', Some '<' -> two SHL
      | '<', _ -> one LT
      | '>', Some '=' -> two GE
      | '>', Some '>' -> two SHR
      | '>', _ -> one GT
      | '=', Some '=' -> two EQ
      | '=', _ -> one ASSIGN
      | '!', Some '=' -> two NE
      | '!', _ -> one BANG
      | '&', Some '&' -> two AMPAMP
      | '&', _ -> one AMP
      | '|', Some '|' -> two BARBAR
      | '|', _ -> one BAR
      | '+', Some '+' -> two PLUSPLUS
      | '+', Some '=' -> two PLUSEQ
      | '+', _ -> one PLUS
      | '-', Some '-' -> two MINUSMINUS
      | '-', Some '=' -> two MINUSEQ
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | c, _ -> error t (Printf.sprintf "unexpected character %C" c))
  in
  (tok, l)

(** Tokenize the entire input (including the final [EOF]). *)
let tokenize src =
  let t = create src in
  let rec go acc =
    let tok, l = next t in
    if tok = EOF then List.rev ((tok, l) :: acc) else go ((tok, l) :: acc)
  in
  go []
