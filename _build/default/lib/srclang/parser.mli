(** Recursive-descent parser for MiniC (precedence climbing with C's
    operator precedences). *)

exception Parse_error of string * Ast.loc

(** Parse a complete program.
    @raise Lexer.Lex_error on lexical errors.
    @raise Parse_error on syntax errors. *)
val parse_program : string -> Ast.program
