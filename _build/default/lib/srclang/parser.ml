(** Recursive-descent parser for MiniC.

    Precedence climbing for expressions with C's operator precedences.
    The grammar is LL(2): the only look-ahead beyond one token is
    distinguishing declarations from expression statements and array
    declarators. *)

exception Parse_error of string * Ast.loc

type t = { mutable toks : (Lexer.token * Ast.loc) list }

let create toks = { toks }

let peek p =
  match p.toks with
  | [] -> (Lexer.EOF, Ast.no_loc)
  | tl :: _ -> tl

let peek2 p =
  match p.toks with
  | _ :: tl :: _ -> tl
  | _ -> (Lexer.EOF, Ast.no_loc)

let advance p = match p.toks with [] -> () | _ :: rest -> p.toks <- rest

let error p msg =
  let tok, loc = peek p in
  raise
    (Parse_error
       (Printf.sprintf "%s (found %S)" msg (Lexer.string_of_token tok), loc))

let expect p tok =
  let found, _ = peek p in
  if found = tok then advance p
  else error p (Printf.sprintf "expected %S" (Lexer.string_of_token tok))

let expect_ident p =
  match peek p with
  | Lexer.IDENT s, _ ->
    advance p;
    s
  | _ -> error p "expected identifier"

(* ------------------------------------------------------------------ *)
(* Types *)

let is_type_start = function
  | Lexer.KW_INT | Lexer.KW_FLOAT | Lexer.KW_VOID -> true
  | _ -> false

let parse_base_type p =
  match peek p with
  | Lexer.KW_INT, _ ->
    advance p;
    Ast.Tint
  | Lexer.KW_FLOAT, _ ->
    advance p;
    Ast.Tfloat
  | Lexer.KW_VOID, _ ->
    advance p;
    Ast.Tvoid
  | _ -> error p "expected type"

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing *)

let binop_of_token = function
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Mod, 10)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.EQ -> Some (Ast.Eq, 6)
  | Lexer.NE -> Some (Ast.Ne, 6)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.BAR -> Some (Ast.Bor, 3)
  | Lexer.AMPAMP -> Some (Ast.Land, 2)
  | Lexer.BARBAR -> Some (Ast.Lor, 1)
  | _ -> None

let rec parse_expr p = parse_binary p 0

and parse_binary p min_prec =
  let lhs = parse_unary p in
  let rec loop lhs =
    let tok, loc = peek p in
    match binop_of_token tok with
    | Some (op, prec) when prec >= min_prec ->
      advance p;
      let rhs = parse_binary p (prec + 1) in
      loop (Ast.mk_expr ~loc (Ast.Binary (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary p =
  let tok, loc = peek p in
  match tok with
  | Lexer.MINUS ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unary (Ast.Neg, parse_unary p))
  | Lexer.BANG ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unary (Ast.Lnot, parse_unary p))
  | Lexer.TILDE ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unary (Ast.Bnot, parse_unary p))
  | _ -> parse_primary p

and parse_primary p =
  let tok, loc = peek p in
  match tok with
  | Lexer.INT_LIT n ->
    advance p;
    Ast.mk_expr ~loc (Ast.Int_lit n)
  | Lexer.FLOAT_LIT f ->
    advance p;
    Ast.mk_expr ~loc (Ast.Float_lit f)
  | Lexer.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    advance p;
    match peek p with
    | Lexer.LPAREN, _ ->
      advance p;
      let args = parse_args p in
      expect p Lexer.RPAREN;
      Ast.mk_expr ~loc (Ast.Call (name, args))
    | Lexer.LBRACKET, _ ->
      advance p;
      let idx = parse_expr p in
      expect p Lexer.RBRACKET;
      Ast.mk_expr ~loc (Ast.Index (name, idx))
    | _ -> Ast.mk_expr ~loc (Ast.Var name))
  | _ -> error p "expected expression"

and parse_args p =
  match peek p with
  | Lexer.RPAREN, _ -> []
  | _ ->
    let rec go acc =
      let e = parse_expr p in
      match peek p with
      | Lexer.COMMA, _ ->
        advance p;
        go (e :: acc)
      | _ -> List.rev (e :: acc)
    in
    go []

(* ------------------------------------------------------------------ *)
(* Statements *)

let parse_lvalue p =
  let name = expect_ident p in
  match peek p with
  | Lexer.LBRACKET, _ ->
    advance p;
    let idx = parse_expr p in
    expect p Lexer.RBRACKET;
    Ast.Lindex (name, idx)
  | _ -> Ast.Lvar name

(* Simple statements usable in for-headers: declarations, assignments,
   increments, and calls — no control flow, no trailing semicolon. *)
let rec parse_simple p =
  let _, loc = peek p in
  if is_type_start (fst (peek p)) then begin
    let ty = parse_base_type p in
    let name = expect_ident p in
    let init =
      match peek p with
      | Lexer.ASSIGN, _ ->
        advance p;
        Some (parse_expr p)
      | _ -> None
    in
    Ast.mk_stmt ~loc (Ast.Decl (ty, name, init))
  end
  else
    match (peek p, peek2 p) with
    | (Lexer.IDENT _, _), (Lexer.ASSIGN, _)
    | (Lexer.IDENT _, _), (Lexer.LBRACKET, _) -> parse_assign_like p loc
    | (Lexer.IDENT _, _), (Lexer.PLUSPLUS, _)
    | (Lexer.IDENT _, _), (Lexer.MINUSMINUS, _)
    | (Lexer.IDENT _, _), (Lexer.PLUSEQ, _)
    | (Lexer.IDENT _, _), (Lexer.MINUSEQ, _) -> parse_assign_like p loc
    | _ ->
      let e = parse_expr p in
      Ast.mk_stmt ~loc (Ast.Expr_stmt e)

and parse_assign_like p loc =
  let lv = parse_lvalue p in
  let lv_expr () =
    match lv with
    | Ast.Lvar v -> Ast.mk_expr ~loc (Ast.Var v)
    | Ast.Lindex (a, i) -> Ast.mk_expr ~loc (Ast.Index (a, i))
  in
  match peek p with
  | Lexer.ASSIGN, _ ->
    advance p;
    let e = parse_expr p in
    Ast.mk_stmt ~loc (Ast.Assign (lv, e))
  | Lexer.PLUSPLUS, _ ->
    advance p;
    let one = Ast.mk_expr ~loc (Ast.Int_lit 1L) in
    Ast.mk_stmt ~loc (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binary (Ast.Add, lv_expr (), one))))
  | Lexer.MINUSMINUS, _ ->
    advance p;
    let one = Ast.mk_expr ~loc (Ast.Int_lit 1L) in
    Ast.mk_stmt ~loc (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binary (Ast.Sub, lv_expr (), one))))
  | Lexer.PLUSEQ, _ ->
    advance p;
    let e = parse_expr p in
    Ast.mk_stmt ~loc (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binary (Ast.Add, lv_expr (), e))))
  | Lexer.MINUSEQ, _ ->
    advance p;
    let e = parse_expr p in
    Ast.mk_stmt ~loc (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binary (Ast.Sub, lv_expr (), e))))
  | _ -> error p "expected assignment operator"

let rec parse_stmt p =
  let tok, loc = peek p in
  match tok with
  | Lexer.LBRACE ->
    advance p;
    let body = parse_stmts p in
    expect p Lexer.RBRACE;
    Ast.mk_stmt ~loc (Ast.Block body)
  | Lexer.KW_IF ->
    advance p;
    expect p Lexer.LPAREN;
    let cond = parse_expr p in
    expect p Lexer.RPAREN;
    let then_b = parse_stmt_as_block p in
    let else_b =
      match peek p with
      | Lexer.KW_ELSE, _ ->
        advance p;
        parse_stmt_as_block p
      | _ -> []
    in
    Ast.mk_stmt ~loc (Ast.If (cond, then_b, else_b))
  | Lexer.KW_WHILE ->
    advance p;
    expect p Lexer.LPAREN;
    let cond = parse_expr p in
    expect p Lexer.RPAREN;
    let body = parse_stmt_as_block p in
    Ast.mk_stmt ~loc (Ast.While (cond, body))
  | Lexer.KW_DO ->
    advance p;
    let body = parse_stmt_as_block p in
    expect p Lexer.KW_WHILE;
    expect p Lexer.LPAREN;
    let cond = parse_expr p in
    expect p Lexer.RPAREN;
    expect p Lexer.SEMI;
    Ast.mk_stmt ~loc (Ast.Do_while (body, cond))
  | Lexer.KW_FOR ->
    advance p;
    expect p Lexer.LPAREN;
    let init =
      match peek p with
      | Lexer.SEMI, _ -> None
      | _ -> Some (parse_simple p)
    in
    expect p Lexer.SEMI;
    let cond =
      match peek p with Lexer.SEMI, _ -> None | _ -> Some (parse_expr p)
    in
    expect p Lexer.SEMI;
    let step =
      match peek p with
      | Lexer.RPAREN, _ -> None
      | _ -> Some (parse_simple p)
    in
    expect p Lexer.RPAREN;
    let body = parse_stmt_as_block p in
    Ast.mk_stmt ~loc (Ast.For (init, cond, step, body))
  | Lexer.KW_RETURN ->
    advance p;
    let e =
      match peek p with Lexer.SEMI, _ -> None | _ -> Some (parse_expr p)
    in
    expect p Lexer.SEMI;
    Ast.mk_stmt ~loc (Ast.Return e)
  | Lexer.KW_BREAK ->
    advance p;
    expect p Lexer.SEMI;
    Ast.mk_stmt ~loc Ast.Break
  | Lexer.KW_CONTINUE ->
    advance p;
    expect p Lexer.SEMI;
    Ast.mk_stmt ~loc Ast.Continue
  | _ ->
    let s = parse_simple p in
    expect p Lexer.SEMI;
    s

and parse_stmt_as_block p =
  match parse_stmt p with
  | { Ast.sdesc = Ast.Block body; _ } -> body
  | s -> [ s ]

and parse_stmts p =
  match peek p with
  | Lexer.RBRACE, _ | Lexer.EOF, _ -> []
  | _ ->
    let s = parse_stmt p in
    s :: parse_stmts p

(* ------------------------------------------------------------------ *)
(* Top level: globals and functions *)

let parse_init_list p =
  expect p Lexer.LBRACE;
  let rec go acc =
    match peek p with
    | Lexer.RBRACE, _ ->
      advance p;
      List.rev acc
    | Lexer.INT_LIT n, _ -> (
      advance p;
      match peek p with
      | Lexer.COMMA, _ ->
        advance p;
        go (n :: acc)
      | _ -> go (n :: acc))
    | Lexer.MINUS, _ -> (
      advance p;
      match peek p with
      | Lexer.INT_LIT n, _ -> (
        advance p;
        let n = Int64.neg n in
        match peek p with
        | Lexer.COMMA, _ ->
          advance p;
          go (n :: acc)
        | _ -> go (n :: acc))
      | _ -> error p "expected integer in initializer")
    | _ -> error p "expected integer in initializer"
  in
  go []

let parse_param p =
  let base = parse_base_type p in
  let name = expect_ident p in
  match peek p with
  | Lexer.LBRACKET, _ ->
    advance p;
    expect p Lexer.RBRACKET;
    (Ast.Tarr base, name)
  | _ -> (base, name)

let parse_params p =
  match peek p with
  | Lexer.RPAREN, _ -> []
  | Lexer.KW_VOID, _ when fst (peek2 p) = Lexer.RPAREN ->
    advance p;
    []
  | _ ->
    let rec go acc =
      let prm = parse_param p in
      match peek p with
      | Lexer.COMMA, _ ->
        advance p;
        go (prm :: acc)
      | _ -> List.rev (prm :: acc)
    in
    go []

let parse_toplevel p =
  let loc = snd (peek p) in
  let base = parse_base_type p in
  let name = expect_ident p in
  match peek p with
  | Lexer.LPAREN, _ ->
    advance p;
    let params = parse_params p in
    expect p Lexer.RPAREN;
    expect p Lexer.LBRACE;
    let body = parse_stmts p in
    expect p Lexer.RBRACE;
    `Func { Ast.fname = name; fparams = params; fret = base; fbody = body; floc = loc }
  | Lexer.LBRACKET, _ -> (
    advance p;
    let size =
      match peek p with
      | Lexer.INT_LIT n, _ ->
        advance p;
        Int64.to_int n
      | _ -> error p "expected array size"
    in
    expect p Lexer.RBRACKET;
    match peek p with
    | Lexer.ASSIGN, _ ->
      advance p;
      let init = parse_init_list p in
      expect p Lexer.SEMI;
      `Global (Ast.Garray (base, name, size, Some init))
    | _ ->
      expect p Lexer.SEMI;
      `Global (Ast.Garray (base, name, size, None)))
  | Lexer.ASSIGN, _ ->
    advance p;
    let e = parse_expr p in
    expect p Lexer.SEMI;
    `Global (Ast.Gscalar (base, name, Some e))
  | Lexer.SEMI, _ ->
    advance p;
    `Global (Ast.Gscalar (base, name, None))
  | _ -> error p "expected function or global declaration"

(** Parse a complete MiniC program from source text.
    @raise Lexer.Lex_error on lexical errors.
    @raise Parse_error on syntax errors. *)
let parse_program src =
  let p = create (Lexer.tokenize src) in
  let rec go globals funcs =
    match peek p with
    | Lexer.EOF, _ -> { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | _ -> (
      match parse_toplevel p with
      | `Global g -> go (g :: globals) funcs
      | `Func f -> go globals (f :: funcs))
  in
  go [] []
