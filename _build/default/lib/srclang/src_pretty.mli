(** Pretty-printer for MiniC ASTs; round-trips with the parser (checked
    by property tests). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_global : Format.formatter -> Ast.global -> unit
val pp_fundef : Format.formatter -> Ast.fundef -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val to_string : Ast.program -> string
