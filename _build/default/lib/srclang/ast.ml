(** Abstract syntax of MiniC, the small C-like source language the SPT
    framework compiles.

    MiniC deliberately covers exactly what the paper's loop-level
    speculative parallelization needs: integer and floating scalars,
    global fixed-size arrays (through which all cross-iteration memory
    dependences flow), functions, and structured control flow ([if],
    [while], [for], [do]/[while]).  The distinction between [for] and
    [while] loops is preserved through lowering because the paper's ORC
    back end can only unroll DO loops (§7.1) — a fact the Fig. 15
    breakdown depends on. *)

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

let pp_loc fmt { line; col } = Format.fprintf fmt "%d:%d" line col

type ty =
  | Tint
  | Tfloat
  | Tarr of ty  (** element type; arrays are 1-D, int or float *)
  | Tvoid

let rec string_of_ty = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tarr t -> string_of_ty t ^ "[]"
  | Tvoid -> "void"

type unop = Neg | Lnot | Bnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

let string_of_unop = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

type expr = {
  edesc : expr_desc;
  eloc : loc;
  mutable ety : ty option;  (** filled in by {!Typecheck} *)
}

and expr_desc =
  | Int_lit of int64
  | Float_lit of float
  | Var of string
  | Index of string * expr  (** [a[e]] — the base is always a named array *)
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { sdesc : stmt_desc; sloc : loc }

and stmt_desc =
  | Decl of ty * string * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
      (** init / condition / step / body.  Lowered loops keep a
          [`For]-origin tag so DO-loop unrolling can find them. *)
  | Return of expr option
  | Expr_stmt of expr
  | Break
  | Continue
  | Block of stmt list

type global =
  | Gscalar of ty * string * expr option
  | Garray of ty * string * int * int64 list option
      (** element type, name, length, optional integer initializer *)

type fundef = {
  fname : string;
  fparams : (ty * string) list;
  fret : ty;
  fbody : stmt list;
  floc : loc;
}

type program = { globals : global list; funcs : fundef list }

let mk_expr ?(loc = no_loc) edesc = { edesc; eloc = loc; ety = None }
let mk_stmt ?(loc = no_loc) sdesc = { sdesc; sloc = loc }

(** Names of the built-in functions available without declaration.
    [rand] is a deterministic LCG so profiling and measurement runs see
    identical behaviour; [srand] reseeds it. *)
let builtins =
  [
    ("fabs", ([ Tfloat ], Tfloat));
    ("sqrt", ([ Tfloat ], Tfloat));
    ("abs", ([ Tint ], Tint));
    ("min", ([ Tint; Tint ], Tint));
    ("max", ([ Tint; Tint ], Tint));
    ("fmin", ([ Tfloat; Tfloat ], Tfloat));
    ("fmax", ([ Tfloat; Tfloat ], Tfloat));
    ("int_of_float", ([ Tfloat ], Tint));
    ("float_of_int", ([ Tint ], Tfloat));
    ("rand", ([], Tint));
    ("srand", ([ Tint ], Tvoid));
    ("print_int", ([ Tint ], Tvoid));
    ("print_float", ([ Tfloat ], Tvoid));
  ]

let is_builtin name = List.mem_assoc name builtins
