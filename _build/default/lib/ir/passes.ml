(** Clean-up passes over SSA-form functions: constant folding, copy
    propagation, phi simplification, mark-and-sweep dead-code
    elimination and CFG simplification.

    These stand in for the "O3 level" scalar optimization the paper's
    base compiler applies (§8); they also run after SSA destruction and
    after the SPT transformation to shrink the copies the destructor
    inserts, exactly as ORC "immediately cleans and optimizes" the
    transformed code with copy propagation and dead code elimination
    (§6.2). *)

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Constant folding (SSA) *)

let fold_constants (f : Ir.func) =
  let changed = ref false in
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Binop (d, op, a, bo) -> (
            match (Eval.of_operand a, Eval.of_operand bo) with
            | Some va, Some vb -> (
              match Eval.eval_binop op va vb with
              | v ->
                i.Ir.kind <- Ir.Move (d, Eval.to_operand v);
                changed := true
              | exception Eval.Division_by_zero -> ())
            | _ -> ())
          | Ir.Unop (d, op, a) -> (
            match Eval.of_operand a with
            | Some va ->
              i.Ir.kind <- Ir.Move (d, Eval.to_operand (Eval.eval_unop op va));
              changed := true
            | None -> ())
          | Ir.Call (Some d, name, args)
            when List.mem name Ir.pure_builtins -> (
            let const_args =
              List.map
                (function Ir.Aop o -> Eval.of_operand o | Ir.Aarr _ -> None)
                args
            in
            if List.for_all Option.is_some const_args then
              match
                Eval.eval_pure_builtin name (List.map Option.get const_args)
              with
              | Some v ->
                i.Ir.kind <- Ir.Move (d, Eval.to_operand v);
                changed := true
              | None -> ())
          | _ -> ())
        b.Ir.instrs;
      (* fold constant branches; the dead edge's phi operands in the
         dropped successor must go too, or they would dangle *)
      match b.Ir.term with
      | Ir.Br (c, t, e) -> (
        let drop_phi_operands dst =
          List.iter
            (fun (i : Ir.instr) ->
              match i.Ir.kind with
              | Ir.Phi (d, ins) ->
                i.Ir.kind <- Ir.Phi (d, List.filter (fun (p, _) -> p <> bid) ins)
              | _ -> ())
            (Ir.block f dst).Ir.instrs
        in
        match Eval.of_operand c with
        | Some v ->
          let kept = if Eval.is_truthy v then t else e in
          let dropped = if Eval.is_truthy v then e else t in
          b.Ir.term <- Ir.Jump kept;
          if dropped <> kept then drop_phi_operands dropped;
          changed := true
        | None -> if t = e then (b.Ir.term <- Ir.Jump t; changed := true))
      | _ -> ())
    (Ir.block_ids f);
  !changed

(* ------------------------------------------------------------------ *)
(* Copy propagation (SSA): replace uses of x with o for every
   [x := Move o], resolving chains. *)

let propagate_copies (f : Ir.func) =
  let subst : (int, Ir.operand) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun bid ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Move (d, o) -> Hashtbl.replace subst d.Ir.vid o
          | _ -> ())
        (Ir.block f bid).Ir.instrs)
    (Ir.block_ids f);
  if Hashtbl.length subst = 0 then false
  else begin
    let rec resolve o =
      match o with
      | Ir.Reg v -> (
        match Hashtbl.find_opt subst v.Ir.vid with
        | Some o' when o' <> o -> resolve o'
        | _ -> o)
      | o -> o
    in
    let changed = ref false in
    let apply o =
      let o' = resolve o in
      if o' <> o then changed := true;
      o'
    in
    List.iter
      (fun bid ->
        let b = Ir.block f bid in
        List.iter
          (fun (i : Ir.instr) ->
            match i.Ir.kind with
            | Ir.Move _ -> ()  (* keep copy defs; DCE removes dead ones *)
            | k -> i.Ir.kind <- Ir.map_kind_operands apply k)
          b.Ir.instrs;
        b.Ir.term <- Ir.map_term_operand apply b.Ir.term)
      (Ir.block_ids f);
    !changed
  end

(* ------------------------------------------------------------------ *)
(* Phi simplification: a phi whose operands are all the same operand
   (ignoring self-references) degenerates to a copy. *)

let simplify_phis (f : Ir.func) =
  let changed = ref false in
  List.iter
    (fun bid ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Phi (d, ins) -> (
            let foreign =
              List.filter_map
                (fun (_, o) ->
                  match o with
                  | Ir.Reg v when Ir.Var.equal v d -> None
                  | o -> Some o)
                ins
            in
            match foreign with
            | [] -> ()
            | o :: rest when List.for_all (fun o' -> o' = o) rest ->
              i.Ir.kind <- Ir.Move (d, o);
              changed := true
            | _ -> ())
          | _ -> ())
        (Ir.block f bid).Ir.instrs)
    (Ir.block_ids f);
  !changed

(* ------------------------------------------------------------------ *)
(* Dead-code elimination: mark from side-effecting roots through
   register dependences, sweep unmarked pure definitions. *)

let has_side_effect kind =
  match kind with
  | Ir.Store _ | Ir.Spt_fork _ | Ir.Spt_kill _ -> true
  | Ir.Call (_, name, _) -> not (List.mem name Ir.pure_builtins)
  | _ -> false

let eliminate_dead_code (f : Ir.func) =
  let def_instr : (int, Ir.instr) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun bid ->
      List.iter
        (fun (i : Ir.instr) ->
          match Ir.def_of_kind i.Ir.kind with
          | Some d -> Hashtbl.replace def_instr d.Ir.vid i
          | None -> ())
        (Ir.block f bid).Ir.instrs)
    (Ir.block_ids f);
  let marked : (int, unit) Hashtbl.t = Hashtbl.create 128 in
  let work = ref [] in
  let mark (i : Ir.instr) =
    if not (Hashtbl.mem marked i.Ir.iid) then begin
      Hashtbl.replace marked i.Ir.iid ();
      work := i :: !work
    end
  in
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      List.iter (fun i -> if has_side_effect i.Ir.kind then mark i) b.Ir.instrs;
      match Ir.term_operand b.Ir.term with
      | Some (Ir.Reg v) -> (
        match Hashtbl.find_opt def_instr v.Ir.vid with
        | Some di -> mark di
        | None -> ())
      | _ -> ())
    (Ir.block_ids f);
  while !work <> [] do
    let i = List.hd !work in
    work := List.tl !work;
    List.iter
      (fun v ->
        match Hashtbl.find_opt def_instr v.Ir.vid with
        | Some di -> mark di
        | None -> ())
      (Ir.reg_uses_of_kind i.Ir.kind)
  done;
  let removed = ref 0 in
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      let keep, drop =
        List.partition
          (fun (i : Ir.instr) ->
            Hashtbl.mem marked i.Ir.iid
            || Ir.def_of_kind i.Ir.kind = None)
          b.Ir.instrs
      in
      removed := !removed + List.length drop;
      b.Ir.instrs <- keep)
    (Ir.block_ids f);
  !removed > 0

(* ------------------------------------------------------------------ *)
(* CFG simplification *)

let simplify_cfg (f : Ir.func) =
  let changed = ref false in
  if Cfg.remove_unreachable f > 0 then changed := true;
  (* merge straight-line pairs: b -> s with b sole pred of s *)
  let continue_merging = ref true in
  while !continue_merging do
    continue_merging := false;
    let cfg = Cfg.of_func f in
    let candidate =
      List.find_opt
        (fun bid ->
          match (Ir.block f bid).Ir.term with
          | Ir.Jump s ->
            s <> bid && s <> f.Ir.entry
            && Cfg.predecessors cfg s = [ bid ]
            && not
                 (List.exists
                    (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind)
                    (Ir.block f s).Ir.instrs)
          | _ -> false)
        (Cfg.reverse_postorder cfg)
    in
    match candidate with
    | Some bid ->
      let b = Ir.block f bid in
      (match b.Ir.term with
      | Ir.Jump s ->
        let sb = Ir.block f s in
        b.Ir.instrs <- b.Ir.instrs @ sb.Ir.instrs;
        b.Ir.term <- sb.Ir.term;
        (* the merged block keeps a loop-origin tag if either had one *)
        if b.Ir.loop_origin = None then b.Ir.loop_origin <- sb.Ir.loop_origin;
        (* successors' phis referring to s now come from b *)
        List.iter
          (fun succ ->
            Cfg.retarget_phis (Ir.block f succ) ~old_pred:s ~new_pred:bid)
          (Ir.term_succs sb.Ir.term);
        Ir.remove_block f s;
        changed := true;
        continue_merging := true
      | _ -> ())
    | None -> ()
  done;
  (* skip empty forwarding blocks (only when the target has no phis) *)
  let cfg = Cfg.of_func f in
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      if bid <> f.Ir.entry && b.Ir.instrs = [] then
        match b.Ir.term with
        | Ir.Jump t
          when t <> bid
               && not
                    (List.exists
                       (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind)
                       (Ir.block f t).Ir.instrs) ->
          List.iter
            (fun p ->
              Cfg.retarget_term (Ir.block f p) ~old_dst:bid ~new_dst:t)
            (Cfg.predecessors cfg bid);
          changed := true
        | _ -> ())
    (Cfg.reverse_postorder cfg);
  if Cfg.remove_unreachable f > 0 then changed := true;
  !changed

(* ------------------------------------------------------------------ *)
(* Pipelines *)

(** Run the SSA-level clean-up to a fixpoint (bounded).  The function
    must be in SSA form. *)
let optimize_ssa ?(max_rounds = 8) (f : Ir.func) =
  let rec go n =
    if n = 0 then ()
    else
      let c1 = fold_constants f in
      let c2 = propagate_copies f in
      let c3 = simplify_phis f in
      let c4 = eliminate_dead_code f in
      let c5 = simplify_cfg f in
      if c1 || c2 || c3 || c4 || c5 then go (n - 1)
  in
  go max_rounds

(** Clean-up applicable to non-SSA code (after destruction): constant
    branch folding and CFG simplification only — the SSA-based copy
    propagation and DCE assume single static definitions. *)
let optimize_nonssa (f : Ir.func) =
  ignore (fold_constants f);
  ignore (simplify_cfg f)
