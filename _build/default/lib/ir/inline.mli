(** Function inlining on the non-SSA IR (extension; see
    {!Spt_driver.Config.best_inline}).  Small, non-recursive callees
    are cloned into their call sites with array-parameter slots rebound
    to the actual regions, so the callee's loops and memory behaviour
    become first-class in the caller's analysis. *)

type policy = {
  max_callee_size : int;  (** static elementary-operation bound *)
  max_rounds : int;  (** bounds transitive inlining *)
}

val default_policy : policy

(** Static function size in elementary operations. *)
val func_size : Ir.func -> int

(** Functions on a call-graph cycle (never inlined). *)
val recursive_functions : Ir.program -> string list

(** Inline eligible call sites across the program, in place; returns
    how many sites were inlined. *)
val run : ?policy:policy -> Ir.program -> int
