(** Textual rendering of the IR, for debugging, the [sptc dump-ir]
    command, and golden tests. *)

open Format

let pp_arg fmt = function
  | Ir.Aop o -> Ir.pp_operand fmt o
  | Ir.Aarr r -> Ir.pp_region fmt r

let pp_kind fmt = function
  | Ir.Move (d, o) -> fprintf fmt "%a := %a" Ir.pp_var d Ir.pp_operand o
  | Ir.Unop (d, op, o) ->
    fprintf fmt "%a := %s %a" Ir.pp_var d (Ir.string_of_unop op) Ir.pp_operand o
  | Ir.Binop (d, op, a, b) ->
    fprintf fmt "%a := %s %a, %a" Ir.pp_var d (Ir.string_of_binop op)
      Ir.pp_operand a Ir.pp_operand b
  | Ir.Load (d, r, idx) ->
    fprintf fmt "%a := load %a[%a]" Ir.pp_var d Ir.pp_region r Ir.pp_operand idx
  | Ir.Store (r, idx, src) ->
    fprintf fmt "store %a[%a] := %a" Ir.pp_region r Ir.pp_operand idx
      Ir.pp_operand src
  | Ir.Call (None, callee, args) ->
    fprintf fmt "call %s(%a)" callee
      (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_arg)
      args
  | Ir.Call (Some d, callee, args) ->
    fprintf fmt "%a := call %s(%a)" Ir.pp_var d callee
      (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_arg)
      args
  | Ir.Phi (d, ins) ->
    fprintf fmt "%a := phi %a" Ir.pp_var d
      (pp_print_list
         ~pp_sep:(fun fmt () -> fprintf fmt ", ")
         (fun fmt (b, o) -> fprintf fmt "[bb%d: %a]" b Ir.pp_operand o))
      ins
  | Ir.Spt_fork l -> fprintf fmt "spt_fork loop%d" l
  | Ir.Spt_kill l -> fprintf fmt "spt_kill loop%d" l

let pp_instr fmt (i : Ir.instr) = fprintf fmt "i%d: %a" i.Ir.iid pp_kind i.Ir.kind

let pp_term fmt = function
  | Ir.Jump b -> fprintf fmt "jump bb%d" b
  | Ir.Br (c, t, e) -> fprintf fmt "br %a, bb%d, bb%d" Ir.pp_operand c t e
  | Ir.Ret None -> fprintf fmt "ret"
  | Ir.Ret (Some o) -> fprintf fmt "ret %a" Ir.pp_operand o

let pp_block fmt (b : Ir.block) =
  let origin =
    match b.Ir.loop_origin with
    | Some `For -> " ; for-loop header"
    | Some `While -> " ; while-loop header"
    | Some `Do -> " ; do-loop header"
    | None -> ""
  in
  fprintf fmt "@[<v 2>bb%d:%s" b.Ir.bid origin;
  List.iter (fun i -> fprintf fmt "@,%a" pp_instr i) b.Ir.instrs;
  fprintf fmt "@,%a@]" pp_term b.Ir.term

let pp_param fmt = function
  | Ir.Pscalar v -> fprintf fmt "%a: %s" Ir.pp_var v (Ir.string_of_ty v.Ir.vty)
  | Ir.Parray (slot, name, ty) ->
    fprintf fmt "%s: %s[] (slot %d)" name (Ir.string_of_ty ty) slot

let pp_func fmt (f : Ir.func) =
  fprintf fmt "@[<v>func %s(%a)%s {  ; entry bb%d@," f.Ir.fname
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_param)
    f.Ir.fparams
    (match f.Ir.fret with
    | None -> ""
    | Some ty -> " -> " ^ Ir.string_of_ty ty)
    f.Ir.entry;
  List.iter
    (fun bid -> fprintf fmt "%a@," pp_block (Ir.block f bid))
    (Ir.block_ids f);
  fprintf fmt "}@]"

let pp_sym fmt (s : Ir.sym) =
  fprintf fmt "global @%s : %s[%d]" s.Ir.sname (Ir.string_of_ty s.Ir.selt)
    s.Ir.ssize

let pp_program fmt (p : Ir.program) =
  fprintf fmt "@[<v>";
  List.iter (fun s -> fprintf fmt "%a@," pp_sym s) p.Ir.globals;
  List.iter (fun (_, f) -> fprintf fmt "@,%a@," pp_func f) p.Ir.funcs;
  fprintf fmt "@]"

let func_to_string f = asprintf "%a" pp_func f
let program_to_string p = asprintf "%a" pp_program p
