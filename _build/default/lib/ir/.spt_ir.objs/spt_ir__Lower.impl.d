lib/ir/lower.ml: Ast Cfg Format Hashtbl Ir List Option Spt_srclang Spt_util
