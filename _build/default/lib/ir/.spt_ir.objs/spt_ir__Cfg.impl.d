lib/ir/cfg.ml: Hashtbl Int Ir List Map Set
