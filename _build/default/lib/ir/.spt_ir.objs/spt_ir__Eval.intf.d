lib/ir/eval.mli: Format Ir
