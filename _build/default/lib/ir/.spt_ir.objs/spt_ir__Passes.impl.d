lib/ir/passes.ml: Cfg Eval Hashtbl Int Ir List Map Option Set
