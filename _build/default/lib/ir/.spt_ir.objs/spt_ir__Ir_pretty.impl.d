lib/ir/ir_pretty.ml: Format Ir List
