lib/ir/dominance.mli: Cfg
