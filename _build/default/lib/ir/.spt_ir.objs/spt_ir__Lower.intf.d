lib/ir/lower.mli: Ir Spt_srclang
