lib/ir/loops.ml: Array Cfg Dominance Hashtbl Int Ir List Set
