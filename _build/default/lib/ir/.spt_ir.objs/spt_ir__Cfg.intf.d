lib/ir/cfg.mli: Ir
