lib/ir/ssa.mli: Ir
