lib/ir/ir_pretty.mli: Format Ir
