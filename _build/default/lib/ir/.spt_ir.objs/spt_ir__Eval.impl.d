lib/ir/eval.ml: Float Format Int64 Ir Printf
