lib/ir/passes.mli: Ir
