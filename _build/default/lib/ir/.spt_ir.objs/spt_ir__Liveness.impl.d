lib/ir/liveness.ml: Cfg Int Ir List Map
