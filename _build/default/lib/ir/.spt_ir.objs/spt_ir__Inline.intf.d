lib/ir/inline.mli: Ir
