lib/ir/dominance.ml: Cfg Int List Map Printf
