lib/ir/ir.mli: Format Hashtbl Map Set Spt_util
