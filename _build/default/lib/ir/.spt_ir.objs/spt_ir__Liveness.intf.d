lib/ir/liveness.mli: Ir
