lib/ir/loops.mli: Int Ir Set
