lib/ir/ssa.ml: Cfg Dominance Format Hashtbl Int Ir List Liveness Map Set String
