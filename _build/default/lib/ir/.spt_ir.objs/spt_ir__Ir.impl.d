lib/ir/ir.ml: Format Hashtbl List Map Printf Set Spt_util
