lib/ir/inline.ml: Hashtbl Int Ir List Map Option
