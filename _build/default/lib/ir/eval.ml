(** Evaluation of IR operations on constant values.

    Shared by the constant-folding pass and the interpreter so compile
    time and run time agree exactly on arithmetic (64-bit wrapping
    integers, IEEE doubles, shift counts masked to 6 bits, comparisons
    producing 0/1). *)

type value = Vi of int64 | Vf of float

exception Division_by_zero

let pp fmt = function
  | Vi n -> Format.fprintf fmt "%Ld" n
  | Vf f -> Format.fprintf fmt "%.6g" f

let zero_of_ty = function Ir.I64 -> Vi 0L | Ir.F64 -> Vf 0.0

let ty_of_value = function Vi _ -> Ir.I64 | Vf _ -> Ir.F64

let of_operand = function
  | Ir.Imm_i n -> Some (Vi n)
  | Ir.Imm_f f -> Some (Vf f)
  | Ir.Reg _ -> None

let to_operand = function Vi n -> Ir.Imm_i n | Vf f -> Ir.Imm_f f

let is_truthy = function Vi 0L -> false | Vi _ -> true | Vf f -> f <> 0.0

let bool_val b = Vi (if b then 1L else 0L)

let eval_binop op a b =
  match (op, a, b) with
  | Ir.Add, Vi x, Vi y -> Vi (Int64.add x y)
  | Ir.Sub, Vi x, Vi y -> Vi (Int64.sub x y)
  | Ir.Mul, Vi x, Vi y -> Vi (Int64.mul x y)
  | Ir.Div, Vi _, Vi 0L -> raise Division_by_zero
  | Ir.Div, Vi x, Vi y -> Vi (Int64.div x y)
  | Ir.Rem, Vi _, Vi 0L -> raise Division_by_zero
  | Ir.Rem, Vi x, Vi y -> Vi (Int64.rem x y)
  | Ir.And, Vi x, Vi y -> Vi (Int64.logand x y)
  | Ir.Or, Vi x, Vi y -> Vi (Int64.logor x y)
  | Ir.Xor, Vi x, Vi y -> Vi (Int64.logxor x y)
  | Ir.Shl, Vi x, Vi y -> Vi (Int64.shift_left x (Int64.to_int y land 63))
  | Ir.Shr, Vi x, Vi y -> Vi (Int64.shift_right x (Int64.to_int y land 63))
  | Ir.Lt, Vi x, Vi y -> bool_val (x < y)
  | Ir.Le, Vi x, Vi y -> bool_val (x <= y)
  | Ir.Gt, Vi x, Vi y -> bool_val (x > y)
  | Ir.Ge, Vi x, Vi y -> bool_val (x >= y)
  | Ir.Eq, Vi x, Vi y -> bool_val (x = y)
  | Ir.Ne, Vi x, Vi y -> bool_val (x <> y)
  | Ir.Add, Vf x, Vf y -> Vf (x +. y)
  | Ir.Sub, Vf x, Vf y -> Vf (x -. y)
  | Ir.Mul, Vf x, Vf y -> Vf (x *. y)
  | Ir.Div, Vf x, Vf y -> Vf (x /. y)
  | Ir.Lt, Vf x, Vf y -> bool_val (x < y)
  | Ir.Le, Vf x, Vf y -> bool_val (x <= y)
  | Ir.Gt, Vf x, Vf y -> bool_val (x > y)
  | Ir.Ge, Vf x, Vf y -> bool_val (x >= y)
  | Ir.Eq, Vf x, Vf y -> bool_val (x = y)
  | Ir.Ne, Vf x, Vf y -> bool_val (x <> y)
  | _ ->
    invalid_arg
      (Printf.sprintf "Eval.eval_binop: ill-typed %s" (Ir.string_of_binop op))

let eval_unop op a =
  match (op, a) with
  | Ir.Neg, Vi x -> Vi (Int64.neg x)
  | Ir.Neg, Vf x -> Vf (-.x)
  | Ir.Bnot, Vi x -> Vi (Int64.lognot x)
  | Ir.I2f, Vi x -> Vf (Int64.to_float x)
  | Ir.F2i, Vf x -> Vi (Int64.of_float x)
  | Ir.Fabs, Vf x -> Vf (Float.abs x)
  | Ir.Fsqrt, Vf x -> Vf (sqrt x)
  | _ ->
    invalid_arg
      (Printf.sprintf "Eval.eval_unop: ill-typed %s" (Ir.string_of_unop op))

(** Pure builtins evaluable at compile time. *)
let eval_pure_builtin name args =
  match (name, args) with
  | "min", [ Vi a; Vi b ] -> Some (Vi (min a b))
  | "max", [ Vi a; Vi b ] -> Some (Vi (max a b))
  | "fmin", [ Vf a; Vf b ] -> Some (Vf (Float.min a b))
  | "fmax", [ Vf a; Vf b ] -> Some (Vf (Float.max a b))
  | "abs", [ Vi a ] -> Some (Vi (Int64.abs a))
  | _ -> None
