(** Scalar clean-up passes, standing in for the paper's "O3 level"
    baseline optimization (§8) and for ORC's post-transformation copy
    propagation / dead-code elimination (§6.2).

    Each pass returns whether it changed anything; [optimize_ssa] runs
    them to a bounded fixpoint and requires SSA form. *)

(** Fold constant operations and constant branches (drops the dead
    edge's phi operands). *)
val fold_constants : Ir.func -> bool

(** Replace uses of copies with their sources (SSA only). *)
val propagate_copies : Ir.func -> bool

(** Degenerate phis (all operands equal, ignoring self-references)
    become copies. *)
val simplify_phis : Ir.func -> bool

(** Mark-and-sweep DCE from side-effecting roots (SSA only). *)
val eliminate_dead_code : Ir.func -> bool

(** Remove unreachable blocks, merge straight-line pairs, skip empty
    forwarding blocks. *)
val simplify_cfg : Ir.func -> bool

(** SSA-level fixpoint clean-up. *)
val optimize_ssa : ?max_rounds:int -> Ir.func -> unit

(** Clean-up safe on non-SSA code (after destruction): constant/branch
    folding and CFG simplification only. *)
val optimize_nonssa : Ir.func -> unit
