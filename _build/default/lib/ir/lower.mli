(** Lowering from the type-checked MiniC AST to the three-address IR.

    Global scalars become size-1 memory regions (so cross-iteration
    dependences through globals are ordinary memory dependences);
    locals and parameters live in virtual registers; [&&]/[||] are
    short-circuit; loop headers are tagged with their source origin for
    the DO-loops-only unrolling policy (§7.1). *)

exception Lower_error of string

(** Lower a type-checked program.
    @raise Lower_error on internal inconsistencies (e.g. a program that
    skipped {!Spt_srclang.Typecheck.check}). *)
val lower_program : Spt_srclang.Ast.program -> Ir.program
