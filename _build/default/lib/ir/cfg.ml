(** Control-flow-graph utilities over {!Ir.func}: successor/predecessor
    maps, reverse postorder, reachability clean-up, edge splitting and
    preheader insertion.

    All analyses recompute from the function on demand; nothing is
    cached inside the IR, so transformation passes never have to keep
    derived structures consistent. *)

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type t = {
  func : Ir.func;
  succs : int list Imap.t;
  preds : int list Imap.t;
  rpo : int list;  (** reverse postorder from the entry; only reachable blocks *)
}

let successors t bid = try Imap.find bid t.succs with Not_found -> []
let predecessors t bid = try Imap.find bid t.preds with Not_found -> []
let reverse_postorder t = t.rpo
let entry t = t.func.Ir.entry

let compute_rpo (f : Ir.func) =
  let visited = Hashtbl.create 32 in
  let order = ref [] in
  let rec dfs bid =
    if not (Hashtbl.mem visited bid) then begin
      Hashtbl.replace visited bid ();
      List.iter dfs (Ir.term_succs (Ir.block f bid).Ir.term);
      order := bid :: !order
    end
  in
  dfs f.Ir.entry;
  !order

let of_func (f : Ir.func) =
  let succs =
    List.fold_left
      (fun acc bid ->
        Imap.add bid (Ir.term_succs (Ir.block f bid).Ir.term) acc)
      Imap.empty (Ir.block_ids f)
  in
  let preds =
    Imap.fold
      (fun bid ss acc ->
        List.fold_left
          (fun acc s ->
            let existing = try Imap.find s acc with Not_found -> [] in
            if List.mem bid existing then acc else Imap.add s (existing @ [ bid ]) acc)
          acc ss)
      succs
      (List.fold_left (fun acc bid -> Imap.add bid [] acc) Imap.empty (Ir.block_ids f))
  in
  { func = f; succs; preds; rpo = compute_rpo f }

(** Delete blocks unreachable from the entry.  Phi nodes in surviving
    blocks drop operands arriving from deleted predecessors.  Returns
    the number of blocks removed. *)
let remove_unreachable (f : Ir.func) =
  let reachable = Iset.of_list (compute_rpo f) in
  let removed = ref 0 in
  List.iter
    (fun bid ->
      if not (Iset.mem bid reachable) then begin
        Ir.remove_block f bid;
        incr removed
      end)
    (Ir.block_ids f);
  if !removed > 0 then
    List.iter
      (fun bid ->
        let b = Ir.block f bid in
        b.Ir.instrs <-
          List.filter_map
            (fun (i : Ir.instr) ->
              match i.Ir.kind with
              | Ir.Phi (d, ins) -> (
                let ins = List.filter (fun (p, _) -> Iset.mem p reachable) ins in
                match ins with
                | [] -> None
                | [ (_, o) ] ->
                  i.Ir.kind <- Ir.Move (d, o);
                  Some i
                | ins ->
                  i.Ir.kind <- Ir.Phi (d, ins);
                  Some i)
              | _ -> Some i)
            b.Ir.instrs)
      (Ir.block_ids f);
  !removed

(** Redirect the [old_dst] successor of [b]'s terminator to [new_dst]. *)
let retarget_term b ~old_dst ~new_dst =
  let sub t = if t = old_dst then new_dst else t in
  b.Ir.instrs <- b.Ir.instrs;
  b.Ir.term <-
    (match b.Ir.term with
    | Ir.Jump t -> Ir.Jump (sub t)
    | Ir.Br (c, t, e) -> Ir.Br (c, sub t, sub e)
    | Ir.Ret _ as t -> t)

(** Update phi nodes of [blk] so that operands arriving from [old_pred]
    arrive from [new_pred] instead. *)
let retarget_phis blk ~old_pred ~new_pred =
  List.iter
    (fun (i : Ir.instr) ->
      match i.Ir.kind with
      | Ir.Phi (d, ins) ->
        i.Ir.kind <-
          Ir.Phi (d, List.map (fun (p, o) -> ((if p = old_pred then new_pred else p), o)) ins)
      | _ -> ())
    blk.Ir.instrs

(** Split the edge [src -> dst] by inserting a fresh empty block.
    Returns the new block.  Phis in [dst] are retargeted. *)
let split_edge (f : Ir.func) ~src ~dst =
  let mid = Ir.add_block f in
  mid.Ir.term <- Ir.Jump dst;
  let sb = Ir.block f src in
  (* Only redirect the edges to [dst]; a conditional with both arms on
     [dst] redirects both, which preserves semantics. *)
  retarget_term sb ~old_dst:dst ~new_dst:mid.Ir.bid;
  retarget_phis (Ir.block f dst) ~old_pred:src ~new_pred:mid.Ir.bid;
  mid

(** [split_critical_edges f] inserts blocks on all edges whose source
    has several successors and whose destination has several
    predecessors.  Required before SSA destruction. *)
let split_critical_edges (f : Ir.func) =
  let t = of_func f in
  let critical =
    List.concat_map
      (fun src ->
        let ss = successors t src in
        if List.length ss < 2 then []
        else
          List.filter_map
            (fun dst ->
              if List.length (predecessors t dst) >= 2 then Some (src, dst)
              else None)
            ss)
      (reverse_postorder t)
  in
  List.iter (fun (src, dst) -> ignore (split_edge f ~src ~dst)) critical;
  List.length critical

(** Ensure the block [header] has a unique predecessor outside
    [body_set] (a preheader); insert one if necessary.  Returns the
    preheader's bid. *)
let ensure_preheader (f : Ir.func) ~header ~in_loop =
  let t = of_func f in
  let outside = List.filter (fun p -> not (in_loop p)) (predecessors t header) in
  match outside with
  | [ p ] when List.length (Ir.term_succs (Ir.block f p).Ir.term) = 1 -> p
  | _ ->
    let pre = Ir.add_block f in
    pre.Ir.term <- Ir.Jump header;
    List.iter
      (fun p ->
        retarget_term (Ir.block f p) ~old_dst:header ~new_dst:pre.Ir.bid)
      outside;
    (* Phi operands from outside predecessors must now flow through the
       preheader.  With several outside predecessors this would need
       phis in the preheader; lowering only ever produces one outside
       predecessor, so we assert that instead. *)
    (match outside with
    | [ p ] -> retarget_phis (Ir.block f header) ~old_pred:p ~new_pred:pre.Ir.bid
    | [] -> ()
    | _ ->
      List.iter
        (fun p -> retarget_phis (Ir.block f header) ~old_pred:p ~new_pred:pre.Ir.bid)
        outside);
    pre.Ir.bid
