(** Evaluation of IR operations on constant values, shared by the
    constant folder and the interpreter so compile time and run time
    agree exactly (64-bit wrapping integers, IEEE doubles, shift counts
    masked to 6 bits, comparisons producing 0/1). *)

type value = Vi of int64 | Vf of float

exception Division_by_zero

val pp : Format.formatter -> value -> unit
val zero_of_ty : Ir.ty -> value
val ty_of_value : value -> Ir.ty

(** [Some] for immediates, [None] for registers. *)
val of_operand : Ir.operand -> value option

val to_operand : value -> Ir.operand

(** C truthiness: nonzero. *)
val is_truthy : value -> bool

val bool_val : bool -> value

(** @raise Division_by_zero on integer division/remainder by zero.
    @raise Invalid_argument on ill-typed operand combinations. *)
val eval_binop : Ir.binop -> value -> value -> value

val eval_unop : Ir.unop -> value -> value

(** Compile-time evaluation of pure builtins ([abs], [min], ...). *)
val eval_pure_builtin : string -> value list -> value option
