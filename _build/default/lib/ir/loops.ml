(** Natural-loop detection.

    A back edge is an edge [latch -> header] where [header] dominates
    [latch]; its natural loop is the set of blocks that can reach the
    latch without passing through the header.  Loops sharing a header
    are merged.  The loop nest is recovered by body-set inclusion.

    Each loop carries the source origin of its header ([`For], [`While]
    or [`Do]) recorded by the lowering pass; unrolling policy (§7.1)
    and the Fig. 15 breakdown depend on it. *)

module Iset = Set.Make (Int)

type loop = {
  header : int;
  body : Iset.t;  (** includes the header *)
  latches : int list;  (** sources of back edges *)
  exits : (int * int) list;  (** (inside block, outside successor) edges *)
  origin : Ir.loop_origin option;
  depth : int;  (** nesting depth, 1 = outermost *)
  parent : int option;  (** index of enclosing loop in the result list *)
}

let in_loop l bid = Iset.mem bid l.body

(** All natural loops of [f], outermost first (by increasing depth,
    ties by header id).  Indices into the returned list are stable and
    used as loop ids by the SPT pipeline. *)
let find (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let dom = Dominance.compute cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let reachable = Iset.of_list rpo in
  (* back edges *)
  let back_edges =
    List.concat_map
      (fun bid ->
        List.filter_map
          (fun succ ->
            if Iset.mem succ reachable && Dominance.dominates dom succ bid then
              Some (bid, succ)
            else None)
          (Cfg.successors cfg bid))
      rpo
  in
  (* group by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let existing = try Hashtbl.find by_header header with Not_found -> [] in
      Hashtbl.replace by_header header (latch :: existing))
    back_edges;
  let natural_body header latches =
    let body = ref (Iset.singleton header) in
    let rec add bid =
      if not (Iset.mem bid !body) then begin
        body := Iset.add bid !body;
        List.iter add (Cfg.predecessors cfg bid)
      end
    in
    List.iter add latches;
    !body
  in
  let raw =
    Hashtbl.fold
      (fun header latches acc ->
        let body = natural_body header latches in
        let exits =
          Iset.fold
            (fun bid acc ->
              List.fold_left
                (fun acc succ ->
                  if Iset.mem succ body then acc else (bid, succ) :: acc)
                acc
                (Cfg.successors cfg bid))
            body []
        in
        ( header,
          body,
          List.sort compare latches,
          List.sort compare exits,
          (Ir.block f header).Ir.loop_origin )
        :: acc)
      by_header []
  in
  (* sort outermost (largest body) first so parents precede children *)
  let raw =
    List.sort
      (fun (h1, b1, _, _, _) (h2, b2, _, _, _) ->
        match compare (Iset.cardinal b2) (Iset.cardinal b1) with
        | 0 -> compare h1 h2
        | c -> c)
      raw
  in
  let arr = Array.of_list raw in
  let n = Array.length arr in
  let parent = Array.make n None in
  let depth = Array.make n 1 in
  for i = 0 to n - 1 do
    let _, body_i, _, _, _ = arr.(i) in
    (* the innermost strictly-enclosing loop is the smallest superset *)
    let best = ref None in
    for j = 0 to n - 1 do
      if i <> j then begin
        let _, body_j, _, _, _ = arr.(j) in
        if Iset.subset body_i body_j && not (Iset.equal body_i body_j) then
          match !best with
          | None -> best := Some j
          | Some k ->
            let _, body_k, _, _, _ = arr.(k) in
            if Iset.cardinal body_j < Iset.cardinal body_k then best := Some j
      end
    done;
    parent.(i) <- !best
  done;
  (* depths: walk parent chains *)
  for i = 0 to n - 1 do
    let rec d j = match parent.(j) with None -> 1 | Some p -> 1 + d p in
    depth.(i) <- d i
  done;
  List.init n (fun i ->
      let header, body, latches, exits, origin = arr.(i) in
      { header; body; latches; exits; origin; depth = depth.(i); parent = parent.(i) })

(** Innermost loops only (no other loop nested inside). *)
let innermost loops =
  List.filter
    (fun l ->
      not
        (List.exists
           (fun l' ->
             l' != l && Iset.subset l'.body l.body
             && not (Iset.equal l'.body l.body))
           loops))
    loops
