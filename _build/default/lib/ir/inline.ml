(** Function inlining on the (non-SSA) IR.

    The paper's framework leaves calls opaque — its cost model treats a
    call as one operation with a conservative memory summary, and the
    Fig. 19 outliers are loops whose calls "modify and use global
    variables unknown to the caller loops".  Inlining small callees is
    the classic remedy (Tsai et al. use it for superthreaded
    partitioning); this pass is provided as an *extension* the driver
    can switch on to measure exactly that effect.

    Call sites are inlined when the callee is small (static size under
    the threshold), not (mutually) recursive and not [main].  Inlining
    runs before unrolling and SSA construction, so the callee's loops
    become first-class candidates of the enclosing function. *)

module Imap = Map.Make (Int)

type policy = {
  max_callee_size : int;  (** static elementary-operation bound *)
  max_rounds : int;  (** bounds transitive inlining *)
}

let default_policy = { max_callee_size = 120; max_rounds = 3 }

let func_size (f : Ir.func) =
  List.fold_left
    (fun acc bid -> acc + Ir.block_size (Ir.block f bid))
    0 (Ir.block_ids f)

(* functions on a cycle of the call graph (self- or mutual recursion) *)
let recursive_functions (prog : Ir.program) =
  let callees name =
    match List.assoc_opt name prog.Ir.funcs with
    | None -> []
    | Some f ->
      List.concat_map
        (fun bid ->
          List.filter_map
            (fun (i : Ir.instr) ->
              match i.Ir.kind with
              | Ir.Call (_, callee, _) when List.mem_assoc callee prog.Ir.funcs ->
                Some callee
              | _ -> None)
            (Ir.block f bid).Ir.instrs)
        (Ir.block_ids f)
  in
  List.filter
    (fun (name, _) ->
      (* can [name] reach itself? *)
      let seen = Hashtbl.create 8 in
      let rec reachable from =
        List.exists
          (fun c ->
            c = name
            ||
            if Hashtbl.mem seen c then false
            else begin
              Hashtbl.replace seen c ();
              reachable c
            end)
          (callees from)
      in
      reachable name)
    prog.Ir.funcs
  |> List.map fst

(* Inline one call site: the call [ci] at position [pos] of block [bid]
   in [caller], calling [callee].  Returns true on success. *)
let inline_site (caller : Ir.func) (callee : Ir.func) ~bid ~pos =
  let b = Ir.block caller bid in
  let call_instr = List.nth b.Ir.instrs pos in
  let dst, args =
    match call_instr.Ir.kind with
    | Ir.Call (dst, _, args) -> (dst, args)
    | _ -> invalid_arg "Inline.inline_site: not a call"
  in
  (* fresh caller variables for every callee variable *)
  let var_map : (int, Ir.var) Hashtbl.t = Hashtbl.create 32 in
  let remap_var v =
    match Hashtbl.find_opt var_map v.Ir.vid with
    | Some v' -> v'
    | None ->
      let v' = Ir.fresh_var caller ~name:(callee.Ir.fname ^ "_" ^ v.Ir.vname) ~ty:v.Ir.vty in
      Hashtbl.replace var_map v.Ir.vid v';
      v'
  in
  let remap_operand = function
    | Ir.Reg v -> Ir.Reg (remap_var v)
    | o -> o
  in
  (* array-parameter slots resolve to the actual regions at this site *)
  let arr_args =
    List.filter_map (function Ir.Aarr r -> Some r | Ir.Aop _ -> None) args
  in
  let remap_region = function
    | Ir.Rsym s -> Ir.Rsym s
    | Ir.Rparam (slot, name) -> (
      match List.nth_opt arr_args slot with
      | Some r -> r
      | None -> invalid_arg ("Inline: unbound array param " ^ name))
  in
  (* clone callee blocks *)
  let block_map =
    List.fold_left
      (fun acc cb -> Imap.add cb (Ir.add_block caller).Ir.bid acc)
      Imap.empty (Ir.block_ids callee)
  in
  (* continuation: the rest of the call block *)
  let cont = Ir.add_block caller in
  cont.Ir.instrs <- List.filteri (fun k _ -> k > pos) b.Ir.instrs;
  cont.Ir.term <- b.Ir.term;
  let remap_kind k =
    let k = Ir.map_kind_operands remap_operand k in
    match k with
    | Ir.Load (d, r, idx) -> Ir.Load (remap_var d, remap_region r, idx)
    | Ir.Store (r, idx, src) -> Ir.Store (remap_region r, idx, src)
    | Ir.Call (d, name, cargs) ->
      Ir.Call
        ( Option.map remap_var d,
          name,
          List.map
            (function Ir.Aarr r -> Ir.Aarr (remap_region r) | a -> a)
            cargs )
    | Ir.Move (d, o) -> Ir.Move (remap_var d, o)
    | Ir.Unop (d, op, o) -> Ir.Unop (remap_var d, op, o)
    | Ir.Binop (d, op, a, c) -> Ir.Binop (remap_var d, op, a, c)
    | Ir.Phi (d, ins) ->
      Ir.Phi (remap_var d, List.map (fun (p, o) -> (Imap.find p block_map, o)) ins)
    | (Ir.Spt_fork _ | Ir.Spt_kill _) as k -> k
  in
  Imap.iter
    (fun old_bid new_bid ->
      let src = Ir.block callee old_bid in
      let dst_blk = Ir.block caller new_bid in
      dst_blk.Ir.loop_origin <- src.Ir.loop_origin;
      dst_blk.Ir.instrs <-
        List.map (fun (i : Ir.instr) -> Ir.mk_instr caller (remap_kind i.Ir.kind)) src.Ir.instrs;
      dst_blk.Ir.term <-
        (match src.Ir.term with
        | Ir.Jump t -> Ir.Jump (Imap.find t block_map)
        | Ir.Br (c, t, e) ->
          Ir.Br (remap_operand c, Imap.find t block_map, Imap.find e block_map)
        | Ir.Ret ret ->
          (* return becomes an assignment to the call's destination plus
             a jump to the continuation *)
          (match (dst, ret) with
          | Some d, Some o ->
            Ir.append_instr dst_blk (Ir.mk_instr caller (Ir.Move (d, remap_operand o)))
          | _ -> ());
          Ir.Jump cont.Ir.bid))
    block_map;
  (* the call block: keep the prefix, bind scalar parameters, jump in *)
  b.Ir.instrs <- List.filteri (fun k _ -> k < pos) b.Ir.instrs;
  let scalar_args =
    List.filter_map (function Ir.Aop o -> Some o | Ir.Aarr _ -> None) args
  in
  let rec bind params sargs =
    match (params, sargs) with
    | [], [] -> ()
    | Ir.Pscalar v :: ps, a :: rest ->
      Ir.append_instr b (Ir.mk_instr caller (Ir.Move (remap_var v, a)));
      bind ps rest
    | Ir.Parray _ :: ps, rest -> bind ps rest
    | _ -> invalid_arg "Inline: arity mismatch"
  in
  bind callee.Ir.fparams scalar_args;
  b.Ir.term <- Ir.Jump (Imap.find callee.Ir.entry block_map)

(** Inline eligible call sites across [prog] (in place).  Returns the
    number of call sites inlined. *)
let run ?(policy = default_policy) (prog : Ir.program) =
  let recursive = recursive_functions prog in
  let eligible name =
    match List.assoc_opt name prog.Ir.funcs with
    | Some callee ->
      name <> "main"
      && (not (List.mem name recursive))
      && func_size callee <= policy.max_callee_size
    | None -> false
  in
  let inlined = ref 0 in
  for _round = 1 to policy.max_rounds do
    List.iter
      (fun (caller_name, caller) ->
        let progressed = ref true in
        while !progressed do
          progressed := false;
          let site =
            List.find_map
              (fun bid ->
                let b = Ir.block caller bid in
                List.find_mapi
                  (fun pos (i : Ir.instr) ->
                    match i.Ir.kind with
                    | Ir.Call (_, callee, _)
                      when callee <> caller_name && eligible callee ->
                      Some (bid, pos, callee)
                    | _ -> None)
                  b.Ir.instrs)
              (Ir.block_ids caller)
          in
          match site with
          | Some (bid, pos, callee_name) ->
            let callee = List.assoc callee_name prog.Ir.funcs in
            inline_site caller callee ~bid ~pos;
            incr inlined;
            progressed := true
          | None -> ()
        done)
      prog.Ir.funcs
  done;
  !inlined
