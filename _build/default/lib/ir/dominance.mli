(** Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).
    Used by SSA construction (phi placement) and loop detection (back
    edges); validated against brute force in the test-suite. *)

type t

val compute : Cfg.t -> t

(** Immediate dominator; the entry maps to itself.
    @raise Invalid_argument on unreachable blocks. *)
val idom : t -> int -> int

(** Dominator-tree children. *)
val children : t -> int -> int list

(** Dominance frontier. *)
val frontier : t -> int -> int list

(** [dominates t a b] — reflexive dominance. *)
val dominates : t -> int -> int -> bool
