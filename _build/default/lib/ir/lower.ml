(** Lowering from the type-checked MiniC AST to the three-address IR.

    Conventions:
    - global scalars become size-1 memory regions, global arrays become
      regions of their declared size;
    - locals and parameters live in virtual registers; the IR is not
      SSA at this point (assignments re-write the same register);
    - [&&] and [||] are short-circuit and introduce control flow;
    - each loop's header block is tagged with its source origin so the
      unroller can implement ORC's DO-loops-only policy (§7.1);
    - non-constant global-scalar initializers are evaluated at the top
      of [main]. *)

open Spt_srclang

exception Lower_error of string

let error fmt = Format.kasprintf (fun m -> raise (Lower_error m)) fmt

type binding = Bvar of Ir.var | Barr of Ir.region

type env = {
  globals : (string, Ir.sym) Hashtbl.t;
  sigs : (string, (Ast.ty * string) list * Ast.ty) Hashtbl.t;
  f : Ir.func;
  mutable cur : Ir.block;
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable break_targets : int list;
  mutable continue_targets : int list;
}

let ir_ty = function
  | Ast.Tint -> Ir.I64
  | Ast.Tfloat -> Ir.F64
  | t -> error "ir_ty: unexpected type %s" (Ast.string_of_ty t)

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes
let pop_scope env =
  match env.scopes with
  | [] -> error "pop_scope: empty"
  | _ :: rest -> env.scopes <- rest

let bind env name b =
  match env.scopes with
  | [] -> error "bind: no scope"
  | scope :: _ -> Hashtbl.replace scope name b

let lookup env name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some b -> Some b
      | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some sym -> Barr (Ir.Rsym sym)
    | None -> error "unbound name %s" name)

let emit env kind =
  let i = Ir.mk_instr env.f kind in
  Ir.append_instr env.cur i;
  i

let start_block env b = env.cur <- b

let fresh env name ty = Ir.fresh_var env.f ~name ~ty

let expr_ty (e : Ast.expr) =
  match e.Ast.ety with
  | Some t -> t
  | None -> error "expression missing type annotation (run Typecheck first)"

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec lower_expr env (e : Ast.expr) : Ir.operand =
  match e.Ast.edesc with
  | Ast.Int_lit n -> Ir.Imm_i n
  | Ast.Float_lit f -> Ir.Imm_f f
  | Ast.Var name -> (
    match lookup env name with
    | Bvar v -> Ir.Reg v
    | Barr (Ir.Rsym sym) when sym.Ir.ssize = 1 ->
      (* global scalar *)
      let d = fresh env name sym.Ir.selt in
      let _ = emit env (Ir.Load (d, Ir.Rsym sym, Ir.Imm_i 0L)) in
      Ir.Reg d
    | Barr _ -> error "array %s used as scalar" name)
  | Ast.Index (name, idx) -> (
    let idx_op = lower_expr env idx in
    match lookup env name with
    | Barr region ->
      let elt =
        match region with
        | Ir.Rsym s -> s.Ir.selt
        | Ir.Rparam _ -> ir_ty (match expr_ty e with t -> t)
      in
      let d = fresh env name elt in
      let _ = emit env (Ir.Load (d, region, idx_op)) in
      Ir.Reg d
    | Bvar _ -> error "scalar %s indexed as array" name)
  | Ast.Unary (op, sub) -> lower_unary env e op sub
  | Ast.Binary ((Ast.Land | Ast.Lor) as op, l, r) -> lower_shortcircuit env op l r
  | Ast.Binary (op, l, r) ->
    let lo = lower_expr env l in
    let ro = lower_expr env r in
    let ty = ir_ty (expr_ty e) in
    let d = fresh env "t" ty in
    let irop = ir_binop op in
    let _ = emit env (Ir.Binop (d, irop, lo, ro)) in
    Ir.Reg d
  | Ast.Call (name, args) -> (
    match lower_call env name args with
    | Some op -> op
    | None -> error "void call %s used as expression" name)

and ir_binop = function
  | Ast.Add -> Ir.Add
  | Ast.Sub -> Ir.Sub
  | Ast.Mul -> Ir.Mul
  | Ast.Div -> Ir.Div
  | Ast.Mod -> Ir.Rem
  | Ast.Lt -> Ir.Lt
  | Ast.Le -> Ir.Le
  | Ast.Gt -> Ir.Gt
  | Ast.Ge -> Ir.Ge
  | Ast.Eq -> Ir.Eq
  | Ast.Ne -> Ir.Ne
  | Ast.Band -> Ir.And
  | Ast.Bor -> Ir.Or
  | Ast.Bxor -> Ir.Xor
  | Ast.Shl -> Ir.Shl
  | Ast.Shr -> Ir.Shr
  | Ast.Land | Ast.Lor -> error "short-circuit operator lowered as binop"

and lower_unary env e op sub =
  let so = lower_expr env sub in
  let ty = ir_ty (expr_ty e) in
  let d = fresh env "t" ty in
  (match op with
  | Ast.Neg -> ignore (emit env (Ir.Unop (d, Ir.Neg, so)))
  | Ast.Bnot -> ignore (emit env (Ir.Unop (d, Ir.Bnot, so)))
  | Ast.Lnot -> ignore (emit env (Ir.Binop (d, Ir.Eq, so, Ir.Imm_i 0L))));
  Ir.Reg d

(* result := (l != 0) then evaluate r, else constant — classic
   short-circuit shape with a join block. *)
and lower_shortcircuit env op l r =
  let lo = lower_expr env l in
  let lbool = fresh env "sc" Ir.I64 in
  let _ = emit env (Ir.Binop (lbool, Ir.Ne, lo, Ir.Imm_i 0L)) in
  let res = fresh env "sc" Ir.I64 in
  let eval_r = Ir.add_block env.f in
  let join = Ir.add_block env.f in
  let lhs_blk = env.cur in
  (match op with
  | Ast.Land -> env.cur.Ir.term <- Ir.Br (Ir.Reg lbool, eval_r.Ir.bid, join.Ir.bid)
  | Ast.Lor -> env.cur.Ir.term <- Ir.Br (Ir.Reg lbool, join.Ir.bid, eval_r.Ir.bid)
  | _ -> assert false);
  start_block env eval_r;
  let ro = lower_expr env r in
  let rbool = fresh env "sc" Ir.I64 in
  let _ = emit env (Ir.Binop (rbool, Ir.Ne, ro, Ir.Imm_i 0L)) in
  let _ = emit env (Ir.Move (res, Ir.Reg rbool)) in
  let r_exit_blk = env.cur in
  r_exit_blk.Ir.term <- Ir.Jump join.Ir.bid;
  (* On the short-circuit path the result is the constant decided by
     the operator.  We cannot place the Move before the branch (res
     must be single-purpose for both paths), so the join uses a phi
     shape encoded as: constant move in a dedicated block. *)
  let const_blk = Ir.add_block env.f in
  let const_val = match op with Ast.Land -> 0L | Ast.Lor -> 1L | _ -> 0L in
  Ir.append_instr const_blk (Ir.mk_instr env.f (Ir.Move (res, Ir.Imm_i const_val)));
  const_blk.Ir.term <- Ir.Jump join.Ir.bid;
  (* retarget the short-circuit edge through the constant block *)
  (match lhs_blk.Ir.term with
  | Ir.Br (c, t, e) ->
    let t = if t = join.Ir.bid then const_blk.Ir.bid else t in
    let e = if e = join.Ir.bid then const_blk.Ir.bid else e in
    lhs_blk.Ir.term <- Ir.Br (c, t, e)
  | _ -> assert false);
  start_block env join;
  Ir.Reg res

and lower_call env name args : Ir.operand option =
  (* builtin unops get dedicated IR operations *)
  let unop_builtin op =
    let a = lower_expr env (List.hd args) in
    let rty = match op with Ir.F2i -> Ir.I64 | Ir.I2f | Ir.Fabs | Ir.Fsqrt -> Ir.F64 | _ -> Ir.I64 in
    let d = fresh env name rty in
    let _ = emit env (Ir.Unop (d, op, a)) in
    Some (Ir.Reg d)
  in
  match name with
  | "fabs" -> unop_builtin Ir.Fabs
  | "sqrt" -> unop_builtin Ir.Fsqrt
  | "int_of_float" -> unop_builtin Ir.F2i
  | "float_of_int" -> unop_builtin Ir.I2f
  | _ ->
    let param_tys, ret_ty =
      match Hashtbl.find_opt env.sigs name with
      | Some (params, ret) -> (List.map fst params, ret)
      | None -> (
        match List.assoc_opt name Ast.builtins with
        | Some (ps, r) -> (ps, r)
        | None -> error "unknown function %s" name)
    in
    let ir_args =
      List.map2
        (fun (arg : Ast.expr) pty ->
          match pty with
          | Ast.Tarr _ -> (
            match arg.Ast.edesc with
            | Ast.Var aname -> (
              match lookup env aname with
              | Barr region -> Ir.Aarr region
              | Bvar _ -> error "scalar %s passed as array" aname)
            | _ -> error "array argument must be a name")
          | _ -> Ir.Aop (lower_expr env arg))
        args param_tys
    in
    (match ret_ty with
    | Ast.Tvoid ->
      let _ = emit env (Ir.Call (None, name, ir_args)) in
      None
    | rty ->
      let d = fresh env name (ir_ty rty) in
      let _ = emit env (Ir.Call (Some d, name, ir_args)) in
      Some (Ir.Reg d))

(* ------------------------------------------------------------------ *)
(* Statements *)

let lower_assign env lv (rhs : Ir.operand) =
  match lv with
  | Ast.Lvar name -> (
    match lookup env name with
    | Bvar v -> ignore (emit env (Ir.Move (v, rhs)))
    | Barr (Ir.Rsym sym) when sym.Ir.ssize = 1 ->
      ignore (emit env (Ir.Store (Ir.Rsym sym, Ir.Imm_i 0L, rhs)))
    | Barr _ -> error "cannot assign to array %s" name)
  | Ast.Lindex (name, idx) -> (
    let idx_op = lower_expr env idx in
    match lookup env name with
    | Barr region -> ignore (emit env (Ir.Store (region, idx_op, rhs)))
    | Bvar _ -> error "scalar %s indexed as array" name)

let rec lower_stmt env (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl (ty, name, init) ->
    let v = fresh env name (ir_ty ty) in
    bind env name (Bvar v);
    let rhs =
      match init with
      | Some e -> lower_expr env e
      | None -> ( match ir_ty ty with Ir.I64 -> Ir.Imm_i 0L | Ir.F64 -> Ir.Imm_f 0.0)
    in
    ignore (emit env (Ir.Move (v, rhs)))
  | Ast.Assign (lv, e) ->
    let rhs = lower_expr env e in
    lower_assign env lv rhs
  | Ast.If (cond, then_b, else_b) ->
    let c = lower_expr env cond in
    let then_blk = Ir.add_block env.f in
    let join = Ir.add_block env.f in
    let else_blk = if else_b = [] then join else Ir.add_block env.f in
    env.cur.Ir.term <- Ir.Br (c, then_blk.Ir.bid, else_blk.Ir.bid);
    start_block env then_blk;
    lower_block env then_b;
    env.cur.Ir.term <- Ir.Jump join.Ir.bid;
    if else_b <> [] then begin
      start_block env else_blk;
      lower_block env else_b;
      env.cur.Ir.term <- Ir.Jump join.Ir.bid
    end;
    start_block env join
  | Ast.While (cond, body) -> lower_loop env ~origin:`While ~cond:(Some cond) ~body ~step:None
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    Option.iter (lower_stmt env) init;
    lower_loop env ~origin:`For ~cond ~body ~step;
    pop_scope env
  | Ast.Do_while (body, cond) -> lower_do_while env body cond
  | Ast.Return None -> begin
    env.cur.Ir.term <- Ir.Ret None;
    (* unreachable continuation *)
    start_block env (Ir.add_block env.f)
  end
  | Ast.Return (Some e) ->
    let o = lower_expr env e in
    env.cur.Ir.term <- Ir.Ret (Some o);
    start_block env (Ir.add_block env.f)
  | Ast.Expr_stmt { Ast.edesc = Ast.Call (name, args); _ } ->
    ignore (lower_call env name args)
  | Ast.Expr_stmt e -> ignore (lower_expr env e)
  | Ast.Break -> (
    match env.break_targets with
    | [] -> error "break outside loop"
    | target :: _ ->
      env.cur.Ir.term <- Ir.Jump target;
      start_block env (Ir.add_block env.f))
  | Ast.Continue -> (
    match env.continue_targets with
    | [] -> error "continue outside loop"
    | target :: _ ->
      env.cur.Ir.term <- Ir.Jump target;
      start_block env (Ir.add_block env.f))
  | Ast.Block body ->
    push_scope env;
    lower_block env body;
    pop_scope env

and lower_block env body = List.iter (lower_stmt env) body

(* header: evaluate cond (possibly multi-block for short-circuit), Br
   body/exit; body; step; back edge to header. *)
and lower_loop env ~origin ~cond ~body ~step =
  let header = Ir.add_block env.f in
  header.Ir.loop_origin <- Some origin;
  env.cur.Ir.term <- Ir.Jump header.Ir.bid;
  start_block env header;
  let body_blk = Ir.add_block env.f in
  let exit_blk = Ir.add_block env.f in
  (match cond with
  | Some c ->
    let c_op = lower_expr env c in
    env.cur.Ir.term <- Ir.Br (c_op, body_blk.Ir.bid, exit_blk.Ir.bid)
  | None -> env.cur.Ir.term <- Ir.Jump body_blk.Ir.bid);
  (* step target: a dedicated latch block so [continue] executes the step *)
  let latch = Ir.add_block env.f in
  env.break_targets <- exit_blk.Ir.bid :: env.break_targets;
  env.continue_targets <- latch.Ir.bid :: env.continue_targets;
  start_block env body_blk;
  push_scope env;
  lower_block env body;
  pop_scope env;
  env.cur.Ir.term <- Ir.Jump latch.Ir.bid;
  env.break_targets <- List.tl env.break_targets;
  env.continue_targets <- List.tl env.continue_targets;
  start_block env latch;
  Option.iter (lower_stmt env) step;
  env.cur.Ir.term <- Ir.Jump header.Ir.bid;
  start_block env exit_blk

and lower_do_while env body cond =
  let body_blk = Ir.add_block env.f in
  body_blk.Ir.loop_origin <- Some `Do;
  env.cur.Ir.term <- Ir.Jump body_blk.Ir.bid;
  let exit_blk = Ir.add_block env.f in
  let latch = Ir.add_block env.f in
  env.break_targets <- exit_blk.Ir.bid :: env.break_targets;
  env.continue_targets <- latch.Ir.bid :: env.continue_targets;
  start_block env body_blk;
  push_scope env;
  lower_block env body;
  pop_scope env;
  env.cur.Ir.term <- Ir.Jump latch.Ir.bid;
  env.break_targets <- List.tl env.break_targets;
  env.continue_targets <- List.tl env.continue_targets;
  start_block env latch;
  let c = lower_expr env cond in
  env.cur.Ir.term <- Ir.Br (c, body_blk.Ir.bid, exit_blk.Ir.bid);
  start_block env exit_blk

(* ------------------------------------------------------------------ *)
(* Functions and programs *)

let lower_fundef globals sigs (fd : Ast.fundef) =
  let ret = match fd.Ast.fret with Ast.Tvoid -> None | t -> Some (ir_ty t) in
  let f = Ir.create_func ~name:fd.Ast.fname ~params:[] ~ret in
  let slot = ref 0 in
  let fparams =
    List.map
      (fun (ty, name) ->
        match ty with
        | Ast.Tarr elt ->
          let p = Ir.Parray (!slot, name, ir_ty elt) in
          incr slot;
          p
        | ty -> Ir.Pscalar (Ir.fresh_var f ~name ~ty:(ir_ty ty)))
      fd.Ast.fparams
  in
  let f = { f with Ir.fparams = fparams } in
  let entry = Ir.add_block f in
  f.Ir.entry <- entry.Ir.bid;
  let env =
    {
      globals;
      sigs;
      f;
      cur = entry;
      scopes = [];
      break_targets = [];
      continue_targets = [];
    }
  in
  push_scope env;
  List.iter
    (function
      | Ir.Pscalar v -> bind env v.Ir.vname (Bvar v)
      | Ir.Parray (slot, name, _) -> bind env name (Barr (Ir.Rparam (slot, name))))
    fparams;
  lower_block env fd.Ast.fbody;
  (* implicit return *)
  (match env.cur.Ir.term with
  | Ir.Ret _ -> ()
  | _ ->
    env.cur.Ir.term <-
      (match ret with
      | None -> Ir.Ret None
      | Some Ir.I64 -> Ir.Ret (Some (Ir.Imm_i 0L))
      | Some Ir.F64 -> Ir.Ret (Some (Ir.Imm_f 0.0))));
  pop_scope env;
  ignore (Cfg.remove_unreachable f);
  f

(** Lower a type-checked program.  Non-constant global-scalar
    initializers are evaluated at the top of [main]. *)
let lower_program (prog : Ast.program) : Ir.program =
  let sym_gen = Spt_util.Idgen.create () in
  let globals = Hashtbl.create 64 in
  let deferred_inits = ref [] in
  let syms =
    List.map
      (fun g ->
        match g with
        | Ast.Gscalar (ty, name, init) ->
          let sym =
            {
              Ir.sid = Spt_util.Idgen.fresh sym_gen;
              sname = name;
              selt = ir_ty ty;
              ssize = 1;
              sinit = None;
            }
          in
          (match init with
          | Some { Ast.edesc = Ast.Int_lit n; _ } ->
            Hashtbl.replace globals name { sym with Ir.sinit = Some [ n ] };
            ()
          | Some e -> deferred_inits := (sym, e) :: !deferred_inits
          | None -> ());
          (match Hashtbl.find_opt globals name with
          | Some s -> s
          | None ->
            Hashtbl.replace globals name sym;
            sym)
        | Ast.Garray (ty, name, size, init) ->
          let sym =
            {
              Ir.sid = Spt_util.Idgen.fresh sym_gen;
              sname = name;
              selt = ir_ty ty;
              ssize = size;
              sinit = init;
            }
          in
          Hashtbl.replace globals name sym;
          sym)
      prog.Ast.globals
  in
  (* re-read table so constant-folded scalar syms are used *)
  let syms = List.map (fun s -> Hashtbl.find globals s.Ir.sname) syms in
  let sigs = Hashtbl.create 64 in
  List.iter
    (fun (fd : Ast.fundef) ->
      Hashtbl.replace sigs fd.Ast.fname (fd.Ast.fparams, fd.Ast.fret))
    prog.Ast.funcs;
  let funcs =
    List.map (fun fd -> (fd.Ast.fname, lower_fundef globals sigs fd)) prog.Ast.funcs
  in
  (* prepend deferred global initializers to main *)
  (match List.assoc_opt "main" funcs with
  | Some mainf ->
    let entry = Ir.block mainf mainf.Ir.entry in
    let env =
      {
        globals;
        sigs;
        f = mainf;
        cur = entry;
        scopes = [ Hashtbl.create 4 ];
        break_targets = [];
        continue_targets = [];
      }
    in
    let saved = entry.Ir.instrs in
    entry.Ir.instrs <- [];
    List.iter
      (fun (sym, e) ->
        let o = lower_expr env e in
        ignore (emit env (Ir.Store (Ir.Rsym sym, Ir.Imm_i 0L, o))))
      (List.rev !deferred_inits);
    (* initializer expressions must be straight-line (no && / ||) so
       that they stay inside the entry block *)
    if env.cur.Ir.bid <> entry.Ir.bid then
      error "global initializers may not contain short-circuit operators";
    env.cur.Ir.instrs <- env.cur.Ir.instrs @ saved
  | None -> ());
  { Ir.globals = syms; funcs }
