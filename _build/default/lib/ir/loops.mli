(** Natural-loop detection: back edges via dominance, bodies by
    backward reachability, nests by body inclusion.  Loop headers carry
    the source origin recorded at lowering ([`For] / [`While] / [`Do]),
    which drives the DO-loops-only unrolling policy (§7.1) and the
    Fig. 15 breakdown. *)

module Iset : module type of Set.Make (Int)

type loop = {
  header : int;
  body : Iset.t;  (** includes the header *)
  latches : int list;  (** sources of back edges *)
  exits : (int * int) list;  (** (inside block, outside successor) *)
  origin : Ir.loop_origin option;
  depth : int;  (** nesting depth, 1 = outermost *)
  parent : int option;  (** index of the enclosing loop in the result *)
}

val in_loop : loop -> int -> bool

(** All natural loops of the function, parents before children. *)
val find : Ir.func -> loop list

(** Loops with no other loop nested inside. *)
val innermost : loop list -> loop list
