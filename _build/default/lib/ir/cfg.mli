(** Control-flow-graph utilities over {!Ir.func}: successor/predecessor
    views, reverse postorder, reachability clean-up, edge splitting and
    preheader insertion.  Analyses recompute on demand; nothing is
    cached inside the IR. *)

type t

val of_func : Ir.func -> t
val successors : t -> int -> int list
val predecessors : t -> int -> int list

(** Reverse postorder from the entry; reachable blocks only. *)
val reverse_postorder : t -> int list

val entry : t -> int

(** Delete blocks unreachable from the entry, dropping phi operands
    from removed predecessors; returns how many were removed. *)
val remove_unreachable : Ir.func -> int

(** Redirect the [old_dst] successor(s) of the block's terminator. *)
val retarget_term : Ir.block -> old_dst:int -> new_dst:int -> unit

(** Rewrite phi operands arriving from [old_pred] to come from
    [new_pred]. *)
val retarget_phis : Ir.block -> old_pred:int -> new_pred:int -> unit

(** Insert a fresh empty block on the edge [src -> dst] (phis in [dst]
    retargeted); returns the new block. *)
val split_edge : Ir.func -> src:int -> dst:int -> Ir.block

(** Split every critical edge (multi-successor source into
    multi-predecessor destination); required before SSA destruction.
    Returns the number of edges split. *)
val split_critical_edges : Ir.func -> int

(** Ensure [header] has a unique predecessor outside the loop (an
    [in_loop] predicate over block ids defines the loop); returns the
    preheader's id. *)
val ensure_preheader : Ir.func -> header:int -> in_loop:(int -> bool) -> int
