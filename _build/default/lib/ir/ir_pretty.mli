(** Textual rendering of the IR, for debugging, golden tests and the
    [sptc dump-ir] command. *)

val pp_arg : Format.formatter -> Ir.arg -> unit
val pp_kind : Format.formatter -> Ir.kind -> unit
val pp_instr : Format.formatter -> Ir.instr -> unit
val pp_term : Format.formatter -> Ir.term -> unit
val pp_block : Format.formatter -> Ir.block -> unit
val pp_param : Format.formatter -> Ir.fparam -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_sym : Format.formatter -> Ir.sym -> unit
val pp_program : Format.formatter -> Ir.program -> unit
val func_to_string : Ir.func -> string
val program_to_string : Ir.program -> string
