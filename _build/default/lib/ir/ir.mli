(** The mid-level three-address IR the SPT framework operates on.

    Every instruction is an *operation* in the paper's §4.2.2 sense:
    cost-graph nodes are exactly IR instructions.  Scalars live in
    virtual registers; all memory traffic goes through named regions
    with explicit loads and stores; scalar globals are size-1 regions,
    so cross-iteration dependences through globals are ordinary memory
    dependences.  [Spt_fork]/[Spt_kill] are the paper's SPT
    instructions and are sequential no-ops — only the TLS timing
    machine gives the fork a meaning. *)

type ty = I64 | F64

val string_of_ty : ty -> string

(** A virtual register, unique per function by [vid]. *)
type var = { vid : int; vname : string; vty : ty }

val pp_var : Format.formatter -> var -> unit

module Var : sig
  type t = var

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
end

module Vset : Set.S with type elt = var
module Vmap : Map.S with type key = var

(** A named memory region: a global array or a size-1 global scalar. *)
type sym = {
  sid : int;
  sname : string;
  selt : ty;
  ssize : int;
  sinit : int64 list option;  (** integer initializer (converted for F64) *)
}

(** Base of a memory access: a concrete region, or the [n]-th array
    parameter of the enclosing function (bound at call time). *)
type region = Rsym of sym | Rparam of int * string

val pp_region : Format.formatter -> region -> unit

type operand = Reg of var | Imm_i of int64 | Imm_f of float

val pp_operand : Format.formatter -> operand -> unit

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

val string_of_binop : binop -> string
val is_comparison : binop -> bool

type unop = Neg | Bnot | I2f | F2i | Fabs | Fsqrt

val string_of_unop : unop -> string

(** A call argument: a scalar operand or an array region. *)
type arg = Aop of operand | Aarr of region

type kind =
  | Move of var * operand
  | Unop of var * unop * operand
  | Binop of var * binop * operand * operand
  | Load of var * region * operand  (** dst := region[idx] *)
  | Store of region * operand * operand  (** region[idx] := src *)
  | Call of var option * string * arg list
  | Phi of var * (int * operand) list
      (** (predecessor bid, value) — SSA form only *)
  | Spt_fork of int  (** loop id; spawns the next-iteration thread *)
  | Spt_kill of int  (** loop id; kills any running speculative thread *)

type instr = { iid : int; mutable kind : kind }

type term = Jump of int | Br of operand * int * int | Ret of operand option

type loop_origin = [ `Do | `For | `While ]

type block = {
  bid : int;
  mutable instrs : instr list;
  mutable term : term;
  mutable loop_origin : loop_origin option;
      (** set on loop-header blocks during lowering; drives the
          DO-loops-only unrolling policy (§7.1) *)
}

type func = {
  fname : string;
  fparams : fparam list;
  fret : ty option;
  mutable entry : int;
  blocks : (int, block) Hashtbl.t;
  var_gen : Spt_util.Idgen.t;
  instr_gen : Spt_util.Idgen.t;
  blk_gen : Spt_util.Idgen.t;
}

and fparam =
  | Pscalar of var
  | Parray of int * string * ty
      (** (slot, name, element type): slot indexes the function's array
          parameters in declaration order *)

type program = { globals : sym list; funcs : (string * func) list }

(** {2 Construction} *)

val create_func : name:string -> params:fparam list -> ret:ty option -> func
val fresh_var : func -> name:string -> ty:ty -> var
val mk_instr : func -> kind -> instr
val add_block : func -> block

(** @raise Invalid_argument for unknown block ids. *)
val block : func -> int -> block

val remove_block : func -> int -> unit

(** All block ids, sorted. *)
val block_ids : func -> int list

val append_instr : block -> instr -> unit
val prepend_instr : block -> instr -> unit

(** {2 Structural queries} *)

val def_of_kind : kind -> var option
val operand_uses_of_kind : kind -> operand list
val reg_uses_of_kind : kind -> var list
val load_region : kind -> region option
val store_region : kind -> region option
val call_regions : kind -> region list
val is_call : kind -> bool
val is_phi : kind -> bool

(** Builtins that neither read nor write program-visible memory. *)
val pure_builtins : string list

(** Builtins with internal state or I/O. *)
val impure_builtins : string list

val term_operand : term -> operand option
val term_succs : term -> int list

(** {2 Rewriting} *)

(** Keep register operands as-is ([map] receives every read operand). *)
val subst_operand : (var -> operand) -> operand -> operand

(** Apply [f] to every operand read by the kind (not the definition). *)
val map_kind_operands : (operand -> operand) -> kind -> kind

val map_term_operand : (operand -> operand) -> term -> term

(** Rename the defined variable.
    @raise Invalid_argument if the kind defines nothing. *)
val replace_def : kind -> var -> kind

(** {2 Sizes} *)

(** Compile-time weight of one operation — Cost(c) in §4.2.4, distinct
    from the simulator's latencies. *)
val op_cost : kind -> int

(** Static block size in elementary operations (terminator counts 1). *)
val block_size : block -> int

(** @raise Invalid_argument for unknown names. *)
val func_of_program : program -> string -> func

val find_sym : program -> string -> sym
