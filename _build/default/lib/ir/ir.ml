(** The mid-level three-address IR the SPT framework operates on.

    Design notes, mirroring the paper's setting:

    - Every instruction is an *operation* in the sense of §4.2.2: the
      cost-graph nodes of the misspeculation cost model are exactly IR
      instructions, so instruction granularity is the cost granularity.
    - Scalars live in virtual registers ([var]); all memory traffic goes
      through named regions ([region]) with explicit [Load]/[Store],
      which keeps the dependence machinery simple and exact.
    - Scalar global variables are size-1 regions, so cross-iteration
      dependences through globals are ordinary memory dependences.
    - [Spt_fork]/[Spt_kill] are the paper's SPT instructions.  They are
      sequential no-ops: an SPT-transformed program is still an ordinary
      sequential program (which the interpreter checks), and only the
      TLS timing simulator gives the fork a meaning.
    - Loop headers carry the *source origin* of the loop ([`For],
      [`While], [`Do]) because ORC can only unroll DO loops (§7.1) and
      the Fig. 15 loop-breakdown experiment depends on the distinction. *)

type ty = I64 | F64

let string_of_ty = function I64 -> "i64" | F64 -> "f64"

type var = { vid : int; vname : string; vty : ty }

let pp_var fmt v = Format.fprintf fmt "%%%s.%d" v.vname v.vid

module Var = struct
  type t = var

  let compare a b = compare a.vid b.vid
  let equal a b = a.vid = b.vid
  let hash a = a.vid
end

module Vset = Set.Make (Var)
module Vmap = Map.Make (Var)

(** A named memory region: a global array or a size-1 global scalar. *)
type sym = {
  sid : int;
  sname : string;
  selt : ty;
  ssize : int;
  sinit : int64 list option;  (** integer initializer (converted for F64) *)
}

(** Base of a memory access: a concrete region, or the [n]-th array
    parameter of the enclosing function (bound to a region at call
    time). *)
type region = Rsym of sym | Rparam of int * string

let pp_region fmt = function
  | Rsym s -> Format.fprintf fmt "@%s" s.sname
  | Rparam (i, name) -> Format.fprintf fmt "@param%d:%s" i name

type operand = Reg of var | Imm_i of int64 | Imm_f of float

let pp_operand fmt = function
  | Reg v -> pp_var fmt v
  | Imm_i n -> Format.fprintf fmt "%Ld" n
  | Imm_f f -> Format.fprintf fmt "%h" f

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr -> false

type unop = Neg | Bnot | I2f | F2i | Fabs | Fsqrt

let string_of_unop = function
  | Neg -> "neg"
  | Bnot -> "bnot"
  | I2f -> "i2f"
  | F2i -> "f2i"
  | Fabs -> "fabs"
  | Fsqrt -> "fsqrt"

(** A call argument: a scalar operand or an array region. *)
type arg = Aop of operand | Aarr of region

type kind =
  | Move of var * operand
  | Unop of var * unop * operand
  | Binop of var * binop * operand * operand
  | Load of var * region * operand  (** dst := region[idx] *)
  | Store of region * operand * operand  (** region[idx] := src *)
  | Call of var option * string * arg list
  | Phi of var * (int * operand) list  (** (predecessor bid, value) — SSA only *)
  | Spt_fork of int  (** loop id; spawns a speculative thread for the next iteration *)
  | Spt_kill of int  (** loop id; kills any running speculative thread *)

type instr = { iid : int; mutable kind : kind }

type term = Jump of int | Br of operand * int * int | Ret of operand option

type loop_origin = [ `For | `While | `Do ]

type block = {
  bid : int;
  mutable instrs : instr list;
  mutable term : term;
  mutable loop_origin : loop_origin option;
      (** set on loop header blocks during lowering *)
}

type func = {
  fname : string;
  fparams : fparam list;
  fret : ty option;
  mutable entry : int;
  blocks : (int, block) Hashtbl.t;
  var_gen : Spt_util.Idgen.t;
  instr_gen : Spt_util.Idgen.t;
  blk_gen : Spt_util.Idgen.t;
}

and fparam = Pscalar of var | Parray of int * string * ty
    (** [Parray (slot, name, elt)] — slot indexes the function's array
        parameters in declaration order *)

type program = { globals : sym list; funcs : (string * func) list }

(* ------------------------------------------------------------------ *)
(* Construction helpers *)

let create_func ~name ~params ~ret =
  {
    fname = name;
    fparams = params;
    fret = ret;
    entry = -1;
    blocks = Hashtbl.create 32;
    var_gen = Spt_util.Idgen.create ();
    instr_gen = Spt_util.Idgen.create ();
    blk_gen = Spt_util.Idgen.create ();
  }

let fresh_var f ~name ~ty = { vid = Spt_util.Idgen.fresh f.var_gen; vname = name; vty = ty }

let mk_instr f kind = { iid = Spt_util.Idgen.fresh f.instr_gen; kind }

let add_block f =
  let bid = Spt_util.Idgen.fresh f.blk_gen in
  let b = { bid; instrs = []; term = Ret None; loop_origin = None } in
  Hashtbl.replace f.blocks bid b;
  b

let block f bid =
  match Hashtbl.find_opt f.blocks bid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.block: no block %d in %s" bid f.fname)

let remove_block f bid = Hashtbl.remove f.blocks bid

let block_ids f =
  Hashtbl.fold (fun bid _ acc -> bid :: acc) f.blocks [] |> List.sort compare

let append_instr b i = b.instrs <- b.instrs @ [ i ]
let prepend_instr b i = b.instrs <- i :: b.instrs

(* ------------------------------------------------------------------ *)
(* Structural queries *)

let def_of_kind = function
  | Move (d, _) | Unop (d, _, _) | Binop (d, _, _, _) | Load (d, _, _) | Phi (d, _)
    -> Some d
  | Call (d, _, _) -> d
  | Store _ | Spt_fork _ | Spt_kill _ -> None

let operand_uses_of_kind = function
  | Move (_, a) | Unop (_, _, a) -> [ a ]
  | Binop (_, _, a, b) -> [ a; b ]
  | Load (_, _, idx) -> [ idx ]
  | Store (_, idx, src) -> [ idx; src ]
  | Call (_, _, args) ->
    List.filter_map (function Aop o -> Some o | Aarr _ -> None) args
  | Phi (_, ins) -> List.map snd ins
  | Spt_fork _ | Spt_kill _ -> []

let reg_uses_of_kind k =
  List.filter_map
    (function Reg v -> Some v | Imm_i _ | Imm_f _ -> None)
    (operand_uses_of_kind k)

(** Memory region read by the instruction, if any.  Calls are handled
    separately by the effects analysis. *)
let load_region = function Load (_, r, _) -> Some r | _ -> None

let store_region = function Store (r, _, _) -> Some r | _ -> None

let call_regions = function
  | Call (_, _, args) ->
    List.filter_map (function Aarr r -> Some r | Aop _ -> None) args
  | _ -> []

let is_call = function Call _ -> true | _ -> false
let is_phi = function Phi _ -> true | _ -> false

(** Names of builtins that neither read nor write program-visible
    memory (pure value functions). *)
let pure_builtins = [ "abs"; "min"; "max"; "fmin"; "fmax" ]

(** Builtins with internal state or I/O; these pin instructions in
    place and act as opaque violation sources. *)
let impure_builtins = [ "rand"; "srand"; "print_int"; "print_float" ]

let term_operand = function
  | Br (c, _, _) -> Some c
  | Ret (Some o) -> Some o
  | Jump _ | Ret None -> None

let term_succs = function
  | Jump b -> [ b ]
  | Br (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Ret _ -> []

(* ------------------------------------------------------------------ *)
(* Operand substitution *)

let subst_operand map o = match o with Reg v -> map v | Imm_i _ | Imm_f _ -> o

(** [map_kind_operands f k] applies [f] to every operand read by [k]
    (not to the defined variable). *)
let map_kind_operands f = function
  | Move (d, a) -> Move (d, f a)
  | Unop (d, op, a) -> Unop (d, op, f a)
  | Binop (d, op, a, b) -> Binop (d, op, f a, f b)
  | Load (d, r, idx) -> Load (d, r, f idx)
  | Store (r, idx, src) -> Store (r, f idx, f src)
  | Call (d, callee, args) ->
    Call (d, callee, List.map (function Aop o -> Aop (f o) | Aarr r -> Aarr r) args)
  | Phi (d, ins) -> Phi (d, List.map (fun (b, o) -> (b, f o)) ins)
  | (Spt_fork _ | Spt_kill _) as k -> k

let map_term_operand f = function
  | Br (c, t, e) -> Br (f c, t, e)
  | Ret (Some o) -> Ret (Some (f o))
  | (Jump _ | Ret None) as t -> t

(** [replace_def k d'] renames the defined variable of [k] to [d']. *)
let replace_def k d' =
  match k with
  | Move (_, a) -> Move (d', a)
  | Unop (_, op, a) -> Unop (d', op, a)
  | Binop (_, op, a, b) -> Binop (d', op, a, b)
  | Load (_, r, idx) -> Load (d', r, idx)
  | Call (Some _, callee, args) -> Call (Some d', callee, args)
  | Phi (_, ins) -> Phi (d', ins)
  | Call (None, _, _) | Store _ | Spt_fork _ | Spt_kill _ ->
    invalid_arg "Ir.replace_def: instruction defines nothing"

(* ------------------------------------------------------------------ *)
(* Operation cost — Cost(c) in the misspeculation cost model (§4.2.4),
   "amount of computation in node c", in elementary-operation units.
   These are compile-time weights, distinct from the simulator's
   latencies. *)

let op_cost = function
  | Move _ | Phi _ -> 1
  | Unop (_, (Neg | Bnot | I2f | F2i | Fabs), _) -> 1
  | Unop (_, Fsqrt, _) -> 10
  | Binop (_, (Mul | Div | Rem), _, _) -> 4
  | Binop _ -> 1
  | Load _ -> 2
  | Store _ -> 2
  | Call _ -> 8
  | Spt_fork _ | Spt_kill _ -> 0

(** Static size of a block in elementary operations (terminator counts
    as one). *)
let block_size b = 1 + List.fold_left (fun acc i -> acc + op_cost i.kind) 0 b.instrs

let func_of_program prog name =
  match List.assoc_opt name prog.funcs with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.func_of_program: no function %s" name)

let find_sym prog name =
  match List.find_opt (fun s -> s.sname = name) prog.globals with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Ir.find_sym: no global %s" name)
