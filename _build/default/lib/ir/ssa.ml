(** SSA construction and destruction.

    Construction is the standard pruned algorithm: phi functions are
    placed at the iterated dominance frontier of each variable's
    definition blocks, restricted to blocks where the variable is live
    in, followed by a renaming walk over the dominator tree.

    Destruction uses Sreedhar's Method I: after splitting critical
    edges, each phi [x0 = phi(x1 … xn)] becomes a fresh variable [x0']
    with a copy [x0' := xi] at the end of each predecessor and a copy
    [x0 := x0'] replacing the phi.  This is immune to the lost-copy and
    swap problems, at the price of extra copies that the clean-up
    passes then shrink.

    The paper's SPT transformation runs between these two phases: in
    SSA form, moving a statement into the pre-fork region is plain code
    motion, and the temporary variables of the paper's Figs. 10–11
    materialize automatically during destruction. *)

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Construction *)

let construct (f : Ir.func) =
  ignore (Cfg.remove_unreachable f);
  let cfg = Cfg.of_func f in
  let dom = Dominance.compute cfg in
  let live = Liveness.compute f in
  let bids = Cfg.reverse_postorder cfg in
  (* definition sites per variable (vid-keyed) *)
  let def_blocks : (int, Iset.t) Hashtbl.t = Hashtbl.create 64 in
  let var_of_vid : (int, Ir.var) Hashtbl.t = Hashtbl.create 64 in
  let note_def v bid =
    Hashtbl.replace var_of_vid v.Ir.vid v;
    let s = try Hashtbl.find def_blocks v.Ir.vid with Not_found -> Iset.empty in
    Hashtbl.replace def_blocks v.Ir.vid (Iset.add bid s)
  in
  List.iter
    (fun bid ->
      List.iter
        (fun (i : Ir.instr) ->
          match Ir.def_of_kind i.Ir.kind with
          | Some d -> note_def d bid
          | None -> ())
        (Ir.block f bid).Ir.instrs)
    bids;
  List.iter
    (function
      | Ir.Pscalar v -> note_def v f.Ir.entry
      | Ir.Parray _ -> ())
    f.Ir.fparams;
  (* phi placement at iterated dominance frontiers, pruned by liveness *)
  let phi_for : (int * int, Ir.instr) Hashtbl.t = Hashtbl.create 64 in
  (* (bid, vid) -> phi instr; phi's original variable recorded here *)
  let phi_orig : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* phi iid -> original vid *)
  Hashtbl.iter
    (fun vid defs ->
      let v = Hashtbl.find var_of_vid vid in
      let work = ref (Iset.elements defs) in
      let placed = ref Iset.empty in
      let ever = ref defs in
      while !work <> [] do
        let b = List.hd !work in
        work := List.tl !work;
        List.iter
          (fun y ->
            if (not (Iset.mem y !placed)) && Ir.Vset.mem v (Liveness.live_in live y)
            then begin
              placed := Iset.add y !placed;
              let preds = Cfg.predecessors cfg y in
              let phi =
                Ir.mk_instr f (Ir.Phi (v, List.map (fun p -> (p, Ir.Reg v)) preds))
              in
              Hashtbl.replace phi_for (y, vid) phi;
              Hashtbl.replace phi_orig phi.Ir.iid vid;
              Ir.prepend_instr (Ir.block f y) phi;
              if not (Iset.mem y !ever) then begin
                ever := Iset.add y !ever;
                work := y :: !work
              end
            end)
          (Dominance.frontier dom b)
      done)
    (Hashtbl.copy def_blocks);
  (* renaming *)
  let stacks : (int, Ir.var list) Hashtbl.t = Hashtbl.create 64 in
  let needs_entry_default : (int, Ir.var) Hashtbl.t = Hashtbl.create 8 in
  let top vid =
    match Hashtbl.find_opt stacks vid with
    | Some (v :: _) -> v
    | _ ->
      (* use of a variable with no dominating definition: materialize a
         zero definition in the entry block *)
      let orig = Hashtbl.find var_of_vid vid in
      Hashtbl.replace needs_entry_default vid orig;
      orig
  in
  let push vid v =
    let s = try Hashtbl.find stacks vid with Not_found -> [] in
    Hashtbl.replace stacks vid (v :: s)
  in
  let pop vid =
    match Hashtbl.find_opt stacks vid with
    | Some (_ :: rest) -> Hashtbl.replace stacks vid rest
    | _ -> ()
  in
  let rename_use o =
    match o with
    | Ir.Reg v when Hashtbl.mem var_of_vid v.Ir.vid -> Ir.Reg (top v.Ir.vid)
    | o -> o
  in
  (* parameters keep their own names as the initial definitions *)
  List.iter
    (function
      | Ir.Pscalar v -> push v.Ir.vid v
      | Ir.Parray _ -> ())
    f.Ir.fparams;
  let rec rename bid =
    let b = Ir.block f bid in
    let pushed = ref [] in
    List.iter
      (fun (i : Ir.instr) ->
        match i.Ir.kind with
        | Ir.Phi (_, ins) ->
          let vid = Hashtbl.find phi_orig i.Ir.iid in
          let orig = Hashtbl.find var_of_vid vid in
          let fresh = Ir.fresh_var f ~name:orig.Ir.vname ~ty:orig.Ir.vty in
          i.Ir.kind <- Ir.Phi (fresh, ins);
          push vid fresh;
          pushed := vid :: !pushed
        | k -> (
          let k = Ir.map_kind_operands rename_use k in
          match Ir.def_of_kind k with
          | Some d when Hashtbl.mem var_of_vid d.Ir.vid ->
            let fresh = Ir.fresh_var f ~name:d.Ir.vname ~ty:d.Ir.vty in
            i.Ir.kind <- Ir.replace_def k fresh;
            push d.Ir.vid fresh;
            pushed := d.Ir.vid :: !pushed
          | _ -> i.Ir.kind <- k))
      b.Ir.instrs;
    b.Ir.term <- Ir.map_term_operand rename_use b.Ir.term;
    (* fill phi operands of successors for the edge from this block *)
    List.iter
      (fun succ ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.Ir.kind with
            | Ir.Phi (d, ins) when Hashtbl.mem phi_orig i.Ir.iid ->
              let vid = Hashtbl.find phi_orig i.Ir.iid in
              i.Ir.kind <-
                Ir.Phi
                  ( d,
                    List.map
                      (fun (p, o) -> if p = bid then (p, Ir.Reg (top vid)) else (p, o))
                      ins )
            | _ -> ())
          (Ir.block f succ).Ir.instrs)
      (Cfg.successors cfg bid);
    List.iter rename (Dominance.children dom bid);
    List.iter pop !pushed
  in
  rename f.Ir.entry;
  (* entry defaults for (rare) uses without dominating defs *)
  Hashtbl.iter
    (fun _ orig ->
      let zero =
        match orig.Ir.vty with Ir.I64 -> Ir.Imm_i 0L | Ir.F64 -> Ir.Imm_f 0.0
      in
      Ir.prepend_instr (Ir.block f f.Ir.entry)
        (Ir.mk_instr f (Ir.Move (orig, zero))))
    needs_entry_default

(* ------------------------------------------------------------------ *)
(* Destruction *)

(** Destroy SSA form.  [phi_primed] optionally overrides the fresh
    intermediate variable used for a given phi (keyed by the phi's
    defined vid): the software-value-prediction transform uses it to
    coalesce a loop-carried variable with its pre-fork prediction
    register so that the common-case write of the carried register
    happens *before* the fork (Fig. 13).  Callers supplying an override
    are responsible for non-interference. *)
let destruct ?(phi_primed = fun _ -> None) (f : Ir.func) =
  ignore (Cfg.split_critical_edges f);
  let bids = Ir.block_ids f in
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      let phis, rest =
        List.partition (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind) b.Ir.instrs
      in
      if phis <> [] then begin
        let replacements =
          List.map
            (fun (i : Ir.instr) ->
              match i.Ir.kind with
              | Ir.Phi (d, ins) ->
                let primed =
                  match phi_primed d.Ir.vid with
                  | Some v -> v
                  | None -> Ir.fresh_var f ~name:(d.Ir.vname ^ "_c") ~ty:d.Ir.vty
                in
                (* copies at predecessor ends *)
                List.iter
                  (fun (p, o) ->
                    let pb = Ir.block f p in
                    pb.Ir.instrs <-
                      pb.Ir.instrs @ [ Ir.mk_instr f (Ir.Move (primed, o)) ])
                  ins;
                (i, Ir.Move (d, Ir.Reg primed))
              | _ -> assert false)
            phis
        in
        List.iter (fun ((i : Ir.instr), k) -> i.Ir.kind <- k) replacements;
        b.Ir.instrs <- phis @ rest
      end)
    bids

(* ------------------------------------------------------------------ *)
(* Validation *)

(** Check the SSA invariants: every variable has at most one static
    definition, every non-phi use is dominated by its definition, and
    every phi has exactly one operand per predecessor.  Returns [Error]
    with a description of the first violation. *)
let check (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let dom = Dominance.compute cfg in
  let def_site : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* vid -> (bid, position); params at (-1, 0) *)
  let err = ref None in
  let fail fmt = Format.kasprintf (fun m -> if !err = None then err := Some m) fmt in
  List.iter
    (function
      | Ir.Pscalar v -> Hashtbl.replace def_site v.Ir.vid (-1, 0)
      | Ir.Parray _ -> ())
    f.Ir.fparams;
  List.iter
    (fun bid ->
      List.iteri
        (fun pos (i : Ir.instr) ->
          match Ir.def_of_kind i.Ir.kind with
          | Some d ->
            if Hashtbl.mem def_site d.Ir.vid then
              fail "variable %s.%d defined twice" d.Ir.vname d.Ir.vid
            else Hashtbl.replace def_site d.Ir.vid (bid, pos)
          | None -> ())
        (Ir.block f bid).Ir.instrs)
    (Cfg.reverse_postorder cfg);
  let dominates_use ~def_bid ~def_pos ~use_bid ~use_pos =
    if def_bid = -1 then true
    else if def_bid = use_bid then def_pos < use_pos
    else Dominance.dominates dom def_bid use_bid
  in
  let check_use ~bid ~pos v =
    match Hashtbl.find_opt def_site v.Ir.vid with
    | None -> fail "use of undefined variable %s.%d in bb%d" v.Ir.vname v.Ir.vid bid
    | Some (db, dp) ->
      if not (dominates_use ~def_bid:db ~def_pos:dp ~use_bid:bid ~use_pos:pos)
      then
        fail "use of %s.%d in bb%d not dominated by its definition in bb%d"
          v.Ir.vname v.Ir.vid bid db
  in
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      let preds = Cfg.predecessors cfg bid in
      List.iteri
        (fun pos (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Phi (_, ins) ->
            let ps = List.map fst ins in
            if List.sort compare ps <> List.sort compare preds then
              fail "phi in bb%d has operands %s but predecessors %s" bid
                (String.concat "," (List.map string_of_int ps))
                (String.concat "," (List.map string_of_int preds));
            (* each operand must be dominated at the end of its pred *)
            List.iter
              (fun (p, o) ->
                match o with
                | Ir.Reg v -> (
                  match Hashtbl.find_opt def_site v.Ir.vid with
                  | None ->
                    fail "phi operand %s.%d undefined" v.Ir.vname v.Ir.vid
                  | Some (db, _) ->
                    if db <> -1 && not (Dominance.dominates dom db p) then
                      fail
                        "phi operand %s.%d (from bb%d) not dominated by def bb%d"
                        v.Ir.vname v.Ir.vid p db)
                | _ -> ())
              ins
          | k ->
            List.iter (check_use ~bid ~pos) (Ir.reg_uses_of_kind k))
        b.Ir.instrs;
      match Ir.term_operand b.Ir.term with
      | Some (Ir.Reg v) ->
        check_use ~bid ~pos:(List.length b.Ir.instrs) v
      | _ -> ())
    (Cfg.reverse_postorder cfg);
  match !err with None -> Ok () | Some m -> Error m
