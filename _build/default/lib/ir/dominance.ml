(** Dominator tree and dominance frontiers, via the Cooper–Harvey–
    Kennedy iterative algorithm over reverse postorder.

    Used by SSA construction (phi placement at dominance frontiers) and
    by the loop finder (back-edge detection). *)

module Imap = Map.Make (Int)

type t = {
  idom : int Imap.t;  (** immediate dominator; the entry maps to itself *)
  children : int list Imap.t;  (** dominator-tree children *)
  frontier : int list Imap.t;  (** dominance frontier per block *)
  rpo_number : int Imap.t;
}

let idom t bid =
  match Imap.find_opt bid t.idom with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Dominance.idom: unreachable block %d" bid)

let children t bid = try Imap.find bid t.children with Not_found -> []
let frontier t bid = try Imap.find bid t.frontier with Not_found -> []

(** [dominates t a b] — does [a] dominate [b]?  Reflexive. *)
let dominates t a b =
  let rec walk b = if b = a then true else
    match Imap.find_opt b t.idom with
    | Some d when d <> b -> walk d
    | _ -> false
  in
  walk b

let compute (cfg : Cfg.t) =
  let rpo = Cfg.reverse_postorder cfg in
  let entry = Cfg.entry cfg in
  let rpo_number =
    List.fold_left
      (fun (i, m) bid -> (i + 1, Imap.add bid i m))
      (0, Imap.empty) rpo
    |> snd
  in
  let number bid = Imap.find bid rpo_number in
  let idom = ref (Imap.singleton entry entry) in
  let intersect a b =
    (* Walk up the current idom approximation; lower rpo number = closer
       to the entry. *)
    let rec go a b =
      if a = b then a
      else if number a > number b then go (Imap.find a !idom) b
      else go a (Imap.find b !idom)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        if bid <> entry then begin
          let processed_preds =
            List.filter
              (fun p -> Imap.mem p !idom && Imap.mem p rpo_number)
              (Cfg.predecessors cfg bid)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            (match Imap.find_opt bid !idom with
            | Some old when old = new_idom -> ()
            | _ ->
              idom := Imap.add bid new_idom !idom;
              changed := true)
        end)
      rpo
  done;
  let idom = !idom in
  let children =
    Imap.fold
      (fun bid d acc ->
        if bid = d then acc
        else
          let existing = try Imap.find d acc with Not_found -> [] in
          Imap.add d (existing @ [ bid ]) acc)
      idom Imap.empty
  in
  (* Dominance frontiers (Cooper-Harvey-Kennedy): for each join block,
     walk each predecessor's dominator chain up to the join's idom. *)
  let frontier = ref Imap.empty in
  List.iter
    (fun bid ->
      let preds = List.filter (fun p -> Imap.mem p idom) (Cfg.predecessors cfg bid) in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let stop = Imap.find bid idom in
            let rec walk runner =
              if runner <> stop then begin
                let existing = try Imap.find runner !frontier with Not_found -> [] in
                if not (List.mem bid existing) then
                  frontier := Imap.add runner (existing @ [ bid ]) !frontier;
                walk (Imap.find runner idom)
              end
            in
            walk p)
          preds)
    rpo;
  { idom; children; frontier = !frontier; rpo_number }
