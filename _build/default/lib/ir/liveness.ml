(** Backward live-variable analysis over the CFG.

    Used by dead-code elimination, by SSA destruction sanity checks,
    and by the SPT machinery to find the scalars that are live around a
    loop's back edge (the carriers of cross-iteration register
    dependences). *)

module Imap = Map.Make (Int)

type t = {
  live_in : Ir.Vset.t Imap.t;
  live_out : Ir.Vset.t Imap.t;
}

let live_in t bid = try Imap.find bid t.live_in with Not_found -> Ir.Vset.empty
let live_out t bid = try Imap.find bid t.live_out with Not_found -> Ir.Vset.empty

(* Per-block [use] (read before any write in the block) and [def]
   (written) sets.  Phi uses are charged to the *predecessor* edge: a
   phi's operands are live-out of the corresponding predecessors, not
   live-in of the phi's block; phi defs are ordinary defs. *)
let block_use_def (b : Ir.block) =
  let use = ref Ir.Vset.empty and def = ref Ir.Vset.empty in
  let see_use v = if not (Ir.Vset.mem v !def) then use := Ir.Vset.add v !use in
  List.iter
    (fun (i : Ir.instr) ->
      (match i.Ir.kind with
      | Ir.Phi _ -> ()  (* handled on edges *)
      | k -> List.iter see_use (Ir.reg_uses_of_kind k));
      match Ir.def_of_kind i.Ir.kind with
      | Some d -> def := Ir.Vset.add d !def
      | None -> ())
    b.Ir.instrs;
  (match Ir.term_operand b.Ir.term with
  | Some (Ir.Reg v) -> see_use v
  | _ -> ());
  (!use, !def)

(* Variables that [succ]'s phis read along the edge from [pred]. *)
let phi_uses_on_edge (f : Ir.func) ~pred ~succ =
  List.fold_left
    (fun acc (i : Ir.instr) ->
      match i.Ir.kind with
      | Ir.Phi (_, ins) ->
        List.fold_left
          (fun acc (p, o) ->
            match o with
            | Ir.Reg v when p = pred -> Ir.Vset.add v acc
            | _ -> acc)
          acc ins
      | _ -> acc)
    Ir.Vset.empty (Ir.block f succ).Ir.instrs

let phi_defs (b : Ir.block) =
  List.fold_left
    (fun acc (i : Ir.instr) ->
      match i.Ir.kind with
      | Ir.Phi (d, _) -> Ir.Vset.add d acc
      | _ -> acc)
    Ir.Vset.empty b.Ir.instrs

let compute (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let bids = Cfg.reverse_postorder cfg in
  let use_def =
    List.fold_left
      (fun acc bid -> Imap.add bid (block_use_def (Ir.block f bid)) acc)
      Imap.empty bids
  in
  let live_in = ref Imap.empty and live_out = ref Imap.empty in
  let get m bid = try Imap.find bid !m with Not_found -> Ir.Vset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in postorder (reverse of rpo) for fast convergence *)
    List.iter
      (fun bid ->
        let out =
          List.fold_left
            (fun acc succ ->
              let succ_in = get live_in succ in
              (* phi defs of succ are not live on the edge; phi uses are *)
              let succ_in =
                Ir.Vset.diff succ_in (phi_defs (Ir.block f succ))
              in
              Ir.Vset.union acc
                (Ir.Vset.union succ_in (phi_uses_on_edge f ~pred:bid ~succ)))
            Ir.Vset.empty (Cfg.successors cfg bid)
        in
        let use, def = Imap.find bid use_def in
        let inn = Ir.Vset.union use (Ir.Vset.diff out def) in
        (* phi defs are defs, already in def; phi operands excluded above *)
        if not (Ir.Vset.equal out (get live_out bid)) then begin
          live_out := Imap.add bid out !live_out;
          changed := true
        end;
        if not (Ir.Vset.equal inn (get live_in bid)) then begin
          live_in := Imap.add bid inn !live_in;
          changed := true
        end)
      (List.rev bids)
  done;
  { live_in = !live_in; live_out = !live_out }
