(** SSA construction (pruned, dominance-frontier based) and destruction
    (Sreedhar Method I: critical-edge splitting plus per-phi
    intermediate copies, immune to the lost-copy and swap problems).

    The SPT transformation works between the two phases: in SSA form,
    moving a statement into the pre-fork region is plain code motion,
    and the paper's Fig. 10–11 temporaries materialize during
    destruction. *)

(** Convert [f] to pruned SSA form, in place. *)
val construct : Ir.func -> unit

(** Destroy SSA form, in place.  [phi_primed] optionally overrides the
    intermediate variable of a phi (keyed by its defined vid): the SPT
    driver coalesces loop-carried variables with their pre-fork
    definitions so the carried register is written before the fork
    (Fig. 2's [temp_i], and the SVP prediction register of Fig. 13).
    Callers supplying overrides are responsible for non-interference. *)
val destruct : ?phi_primed:(int -> Ir.var option) -> Ir.func -> unit

(** Validate the SSA invariants (single static definitions, dominating
    definitions, phi/predecessor agreement); [Error] describes the
    first violation. *)
val check : Ir.func -> (unit, string) result
