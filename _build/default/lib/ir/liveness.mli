(** Backward live-variable analysis.  Phi operands count as uses on
    their predecessor edges (live-out of the predecessor, not live-in
    of the phi's block); phi definitions are ordinary definitions. *)

type t

val compute : Ir.func -> t
val live_in : t -> int -> Ir.Vset.t
val live_out : t -> int -> Ir.Vset.t
