(** Small descriptive-statistics helpers used by the reporting layer
    and the benchmark harness (averages, geometric means for speedups,
    Pearson correlation for the Fig. 19 scatter). *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let n = float_of_int (List.length xs) in
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
          else acc +. log x)
        0.0 xs
    in
    exp (log_sum /. n)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs /. n

let stddev xs = sqrt (variance xs)

let pearson xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Stats.pearson: length mismatch";
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let mx = mean xs and my = mean ys in
    let num, dx2, dy2 =
      List.fold_left2
        (fun (num, dx2, dy2) x y ->
          let dx = x -. mx and dy = y -. my in
          (num +. (dx *. dy), dx2 +. (dx *. dx), dy2 +. (dy *. dy)))
        (0.0, 0.0, 0.0) xs ys
    in
    if dx2 = 0.0 || dy2 = 0.0 then 0.0 else num /. sqrt (dx2 *. dy2)

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    let nth i = List.nth sorted i in
    (nth lo *. (1.0 -. frac)) +. (nth hi *. frac)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs -> List.fold_left max x xs
