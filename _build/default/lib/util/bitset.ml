(** Fixed-capacity bitsets over small integer universes.

    The branch-and-bound partition search (§5.2) represents candidate
    pre-fork regions as subsets of the violation-candidate universe
    (at most 30 elements, the paper's skip threshold), so a single-word
    or small-array bitset keeps the search allocation-free. *)

type t = { capacity : int; words : int array }

let word_bits = Sys.int_size

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  let nwords = max 1 ((capacity + word_bits - 1) / word_bits) in
  { capacity; words = Array.make nwords 0 }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let copy t = { capacity = t.capacity; words = Array.copy t.words }

let add t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) land (1 lsl b) <> 0

let cardinal t =
  let count_word w =
    let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
    go w 0
  in
  Array.fold_left (fun acc w -> acc + count_word w) 0 t.words

let capacity t = t.capacity

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let subset a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.subset: capacity mismatch";
  Array.for_all2 (fun wa wb -> wa land lnot wb = 0) a.words b.words

let equal a b = a.capacity = b.capacity && a.words = b.words

let of_list capacity xs =
  let t = create capacity in
  List.iter (add t) xs;
  t
