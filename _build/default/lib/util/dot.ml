(** Graphviz DOT rendering for the graphs built by the framework (CFGs,
    dependence graphs, cost graphs, VC-dep graphs).  Purely a debugging
    and documentation aid; nothing in the pipeline depends on it. *)

type node = { id : int; label : string; shape : string }
type edge = { src : int; dst : int; elabel : string; style : string }

type t = { name : string; mutable nodes : node list; mutable edges : edge list }

let create name = { name; nodes = []; edges = [] }

let add_node ?(shape = "box") g ~id ~label =
  g.nodes <- { id; label; shape } :: g.nodes

let add_edge ?(label = "") ?(style = "solid") g ~src ~dst =
  g.edges <- { src; dst; elabel = label; style } :: g.edges

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" g.name);
  Buffer.add_string buf "  node [fontname=\"monospace\"];\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" n.id
           (escape n.label) n.shape))
    (List.rev g.nodes);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\", style=%s];\n" e.src e.dst
           (escape e.elabel) e.style))
    (List.rev g.edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render g))
