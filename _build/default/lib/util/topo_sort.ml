(** Topological sorting of integer-keyed directed graphs.

    The cost model (§4.2.3 of the paper) and the VC-dependence graph
    (§5.1) both require a topological order before probabilities are
    propagated or the partition search starts.  Graphs are given as an
    adjacency function over an explicit node list so that callers never
    need to copy their structures. *)

exception Cycle of int list

(* Kahn's algorithm over an explicit node universe.  We keep the
   resulting order stable with respect to the input node order: among
   ready nodes the one earliest in [nodes] is emitted first, which makes
   topological numbers deterministic across runs. *)
let sort ~nodes ~succs =
  let n = List.length nodes in
  let index = Hashtbl.create (2 * n) in
  List.iteri (fun i v -> Hashtbl.replace index v i) nodes;
  let indeg = Array.make n 0 in
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          match Hashtbl.find_opt index w with
          | Some j -> indeg.(j) <- indeg.(j) + 1
          | None -> invalid_arg "Topo_sort.sort: edge to unknown node")
        (succs v))
    nodes;
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  List.iteri (fun i _ -> if indeg.(i) = 0 then ready := Iset.add i !ready) nodes;
  let arr = Array.of_list nodes in
  let out = ref [] in
  let emitted = ref 0 in
  while not (Iset.is_empty !ready) do
    let i = Iset.min_elt !ready in
    ready := Iset.remove i !ready;
    let v = arr.(i) in
    out := v :: !out;
    incr emitted;
    List.iter
      (fun w ->
        let j = Hashtbl.find index w in
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then ready := Iset.add j !ready)
      (succs v)
  done;
  if !emitted <> n then begin
    let leftover =
      List.filteri (fun i _ -> indeg.(i) > 0) (List.mapi (fun i _ -> i) nodes)
      |> List.map (fun i -> arr.(i))
    in
    raise (Cycle leftover)
  end;
  List.rev !out

let order ~nodes ~succs =
  let sorted = sort ~nodes ~succs in
  let tbl = Hashtbl.create (2 * List.length nodes) in
  List.iteri (fun i v -> Hashtbl.replace tbl v i) sorted;
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some i -> i
    | None -> invalid_arg "Topo_sort.order: unknown node"
