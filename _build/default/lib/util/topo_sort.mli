(** Topological sorting of integer-keyed directed graphs. *)

(** Raised when the graph contains a cycle; carries the nodes that could
    not be ordered. *)
exception Cycle of int list

(** [sort ~nodes ~succs] is [nodes] in a topological order of the edge
    relation [succs] (edges point from earlier to later).  The order is
    deterministic: ties are broken by position in [nodes].
    @raise Cycle if the graph is cyclic.
    @raise Invalid_argument if [succs] mentions a node outside [nodes]. *)
val sort : nodes:int list -> succs:(int -> int list) -> int list

(** [order ~nodes ~succs] returns a function mapping each node to its
    topological number (0-based).  Convenience wrapper over [sort]. *)
val order : nodes:int list -> succs:(int -> int list) -> int -> int
