(** Plain-text table rendering for experiment reports.

    The benchmark harness prints every reproduced table/figure as an
    aligned ASCII table so `bench_output.txt` is directly comparable to
    the paper's tables. *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers length mismatch";
      a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print t = print_string (render t)
