(** Mutable fixed-capacity bitsets over [0 .. capacity-1], used by the
    partition search to represent candidate pre-fork regions. *)

type t

(** [create n] is the empty set over universe [0..n-1].
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** Deep copy. *)
val copy : t -> t

(** Indexed operations raise [Invalid_argument] outside [0..capacity-1]. *)
val add : t -> int -> unit

val remove : t -> int -> unit
val mem : t -> int -> bool

(** Number of members. *)
val cardinal : t -> int

(** Universe size given at creation. *)
val capacity : t -> int

(** Iterate members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Members in increasing order. *)
val elements : t -> int list

val is_empty : t -> bool

(** [subset a b] is true iff every member of [a] is in [b].
    @raise Invalid_argument on capacity mismatch. *)
val subset : t -> t -> bool

val equal : t -> t -> bool

(** [of_list n xs] is the set over [0..n-1] containing [xs]. *)
val of_list : int -> int list -> t
