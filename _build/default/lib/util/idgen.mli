(** Monotonic integer id generators used to key graph nodes and IR
    instructions throughout the framework. *)

type t

(** [create ()] is a fresh generator whose first id is [0]. *)
val create : unit -> t

(** [fresh t] returns the next unused id and advances the generator. *)
val fresh : t -> int

(** [peek t] is the id that the next [fresh] call would return. *)
val peek : t -> int

(** [reset t] restarts the generator at [0]; used by tests for
    reproducible ids. *)
val reset : t -> unit
