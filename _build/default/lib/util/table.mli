(** Aligned ASCII tables for experiment reports. *)

type align = Left | Right

type t

(** [create ?aligns headers] is an empty table; default alignment is
    [Right] for every column.
    @raise Invalid_argument if [aligns] has the wrong arity. *)
val create : ?aligns:align list -> string list -> t

(** @raise Invalid_argument if the row arity differs from the header. *)
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit
