(** Monotonic integer id generators.

    Every graph-like structure in the framework (CFG nodes, IR
    instructions, dependence edges, …) is keyed by a small integer id.
    A generator hands out fresh ids starting from 0 and can be reset,
    which the test-suite uses to obtain reproducible ids. *)

type t = { mutable next : int }

let create () = { next = 0 }

let fresh t =
  let id = t.next in
  t.next <- id + 1;
  id

let peek t = t.next

let reset t = t.next <- 0
