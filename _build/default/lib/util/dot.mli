(** Graphviz DOT rendering for framework graphs (debug/doc aid). *)

type t

(** [create name] is an empty digraph called [name]. *)
val create : string -> t

(** [add_node ?shape g ~id ~label] adds node [id]; default shape
    ["box"].  Adding the same id twice renders two nodes — callers keep
    ids unique. *)
val add_node : ?shape:string -> t -> id:int -> label:string -> unit

(** [add_edge ?label ?style g ~src ~dst] adds a directed edge; default
    style ["solid"] (the dependence-graph printers use ["dashed"] for
    cross-iteration edges, matching the paper's figures). *)
val add_edge : ?label:string -> ?style:string -> t -> src:int -> dst:int -> unit

(** Render to DOT syntax. *)
val render : t -> string

(** Write the rendered graph to a file. *)
val to_file : t -> string -> unit
