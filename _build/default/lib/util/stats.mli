(** Descriptive statistics for the reporting and benchmarking layers. *)

(** Arithmetic mean; [0.] on the empty list. *)
val mean : float list -> float

(** Geometric mean; [0.] on the empty list.
    @raise Invalid_argument on non-positive values. *)
val geomean : float list -> float

(** Population variance; [0.] on lists shorter than 2. *)
val variance : float list -> float

(** Population standard deviation. *)
val stddev : float list -> float

(** Pearson correlation coefficient of two equal-length series;
    [0.] when either series is constant or too short.
    @raise Invalid_argument on length mismatch. *)
val pearson : float list -> float list -> float

(** [percentile p xs] is the linear-interpolated [p]-th percentile
    (0–100) of [xs]; [0.] on the empty list. *)
val percentile : float -> float list -> float

(** @raise Invalid_argument on the empty list. *)
val minimum : float list -> float

(** @raise Invalid_argument on the empty list. *)
val maximum : float list -> float
