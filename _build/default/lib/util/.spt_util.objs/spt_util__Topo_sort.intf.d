lib/util/topo_sort.mli:
