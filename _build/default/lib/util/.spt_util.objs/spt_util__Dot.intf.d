lib/util/dot.mli:
