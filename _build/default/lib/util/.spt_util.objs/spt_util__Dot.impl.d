lib/util/dot.ml: Buffer Fun List Printf String
