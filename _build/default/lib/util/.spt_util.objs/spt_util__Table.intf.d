lib/util/table.mli:
