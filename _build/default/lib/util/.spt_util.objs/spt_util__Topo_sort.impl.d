lib/util/topo_sort.ml: Array Hashtbl Int List Set
