lib/util/stats.mli:
