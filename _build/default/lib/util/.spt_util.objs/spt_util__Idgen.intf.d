lib/util/idgen.mli:
