lib/util/bitset.mli:
