lib/util/idgen.ml:
