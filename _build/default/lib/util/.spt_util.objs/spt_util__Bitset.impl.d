lib/util/bitset.ml: Array List Sys
