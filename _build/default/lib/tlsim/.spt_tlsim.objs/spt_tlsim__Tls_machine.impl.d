lib/tlsim/tls_machine.ml: Array Branch_pred Cache Eval Float Hashtbl Int Interp Ir List Loops Map Option Printf Set Spt_interp Spt_ir Sys
