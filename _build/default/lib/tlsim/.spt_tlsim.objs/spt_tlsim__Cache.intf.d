lib/tlsim/cache.mli:
