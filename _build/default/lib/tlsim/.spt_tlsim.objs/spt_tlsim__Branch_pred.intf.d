lib/tlsim/branch_pred.mli:
