lib/tlsim/tls_machine.mli: Cache Int Set Spt_ir
