lib/tlsim/branch_pred.ml: Array
