lib/tlsim/cache.ml: Array
