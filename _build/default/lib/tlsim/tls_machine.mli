(** The synthetic two-core TLS machine (§8 of the paper).

    A trace-driven timing simulator: program semantics come from the
    sequential interpreter (SPT instructions are sequential no-ops);
    this machine consumes the dynamic event stream and computes cycles
    under the paper's execution model — a main core plus one
    speculative core, in-order issue, a shared Itanium2-like cache
    hierarchy, a bimodal branch predictor, 6-cycle fork and 5-cycle
    commit overheads, value-based register validation, address/time-
    based memory validation, and serial re-execution of the
    misspeculated slice. *)

module Iset : module type of Set.Make (Int)

type config = {
  fork_overhead : float;  (** cycles to spawn a speculative thread (paper: 6) *)
  commit_overhead : float;  (** cycles to commit its results (paper: 5) *)
  issue_width : float;  (** in-order issue width (2) *)
  cache : Cache.config;
  max_eligible_body : int;
      (** loop-size bound for the "maximum coverage" metric (paper: 1000) *)
  min_eligible_body : int;
}

val default_config : config

(** A speculatively parallelized loop, as registered by the driver
    after the SPT transformation. *)
type spt_loop = { sl_id : int; sl_fname : string; sl_header : int; sl_body : Iset.t }

(** Per-SPT-loop counters collected during simulation. *)
type loop_metrics = {
  mutable lm_instances : int;  (** times the loop was entered *)
  mutable lm_iterations : int;
  mutable lm_pairs : int;  (** (main, speculative) iteration pairs *)
  mutable lm_violated_pairs : int;
  mutable lm_reexec_units : float;  (** re-executed computation, op units *)
  mutable lm_spec_units : float;  (** speculated computation, op units *)
  mutable lm_spt_cycles : float;  (** wall cycles inside the loop *)
  mutable lm_serial_est : float;  (** serial-equivalent work cycles *)
  mutable lm_forks : int;
  mutable lm_reg_violations : int;
  mutable lm_mem_violations : int;
}

type result = {
  cycles : float;
  instrs : int;
  ipc : float;
  cache_stats : Cache.stats;
  branch_mispredict_rate : float;
  loop_metrics : (int * loop_metrics) list;  (** per SPT loop id *)
  spt_cycles_total : float;  (** cycles spent inside SPT loop instances *)
  eligible_loop_cycles : float;
      (** cycles attributable to loops within the eligible size bounds
          (Fig. 16's maximum coverage), measured on a base run *)
  static_loop_cycles : ((string * int) * float) list;
      (** wall cycles per static loop (function, header) *)
  output : string;  (** the program's printed output, for equivalence checks *)
}

(** Simulate [program].  [spt_loops] lists the speculatively
    parallelized loops of the (transformed) program; leave it empty for
    the non-SPT baseline timing (Table 1). *)
val run :
  ?config:config -> ?spt_loops:spt_loop list -> ?max_steps:int -> Spt_ir.Ir.program -> result
