(** Set-associative LRU cache hierarchy: private L1s under shared
    L2/L3, with Itanium2-like sizes and latencies (§8). *)

type level_config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type config = {
  l1 : level_config;
  l2 : level_config;
  l3 : level_config;
  memory_latency : int;
}

val itanium2_config : config

type t

val create : ?config:config -> cores:int -> unit -> t

(** Latency in cycles of an access by [core] to a byte address; all
    levels are filled on a miss. *)
val access : t -> core:int -> int -> int

type stats = { l1_hit_rate : float; l2_hit_rate : float; l3_hit_rate : float }

val stats : t -> stats
