(** Bimodal branch predictor: 2-bit saturating counters, 5-cycle
    misprediction penalty (§8). *)

type t

val create : unit -> t
val mispredict_penalty : int

(** Record one dynamic outcome for the branch site; returns the penalty
    in cycles (0 on a correct prediction). *)
val access : t -> site:int -> taken:bool -> int

val misprediction_rate : t -> float
