(** Set-associative LRU cache hierarchy for the TLS machine.

    Two in-order cores with private L1 data caches share the L2/L3
    levels and memory, with Itanium2-like sizes and latencies (§8: "the
    memory/cache hierarchy has the same configuration and latencies as
    the Intel Itanium2 systems").  Addresses are byte addresses; the
    simulator multiplies element addresses by 8. *)

type level_config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type config = {
  l1 : level_config;
  l2 : level_config;
  l3 : level_config;
  memory_latency : int;
}

let itanium2_config =
  {
    l1 = { size_bytes = 16 * 1024; ways = 4; line_bytes = 64; hit_latency = 1 };
    l2 = { size_bytes = 256 * 1024; ways = 8; line_bytes = 128; hit_latency = 5 };
    l3 = { size_bytes = 3 * 1024 * 1024; ways = 12; line_bytes = 128; hit_latency = 12 };
    memory_latency = 150;
  }

(* One cache level: per-set arrays of tags with LRU stamps. *)
type level = {
  cfg : level_config;
  sets : int;
  tags : int array array;  (** [set][way]; -1 = invalid *)
  stamps : int array array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let make_level cfg =
  let sets = max 1 (cfg.size_bytes / (cfg.ways * cfg.line_bytes)) in
  {
    cfg;
    sets;
    tags = Array.init sets (fun _ -> Array.make cfg.ways (-1));
    stamps = Array.init sets (fun _ -> Array.make cfg.ways 0);
    tick = 0;
    hits = 0;
    misses = 0;
  }

(* true on hit; on miss the line is installed *)
let access_level lvl addr =
  let line = addr / lvl.cfg.line_bytes in
  let set = line mod lvl.sets in
  let tags = lvl.tags.(set) and stamps = lvl.stamps.(set) in
  lvl.tick <- lvl.tick + 1;
  let rec find w =
    if w >= lvl.cfg.ways then None
    else if tags.(w) = line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    stamps.(w) <- lvl.tick;
    lvl.hits <- lvl.hits + 1;
    true
  | None ->
    lvl.misses <- lvl.misses + 1;
    (* evict LRU *)
    let victim = ref 0 in
    for w = 1 to lvl.cfg.ways - 1 do
      if stamps.(w) < stamps.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    stamps.(!victim) <- lvl.tick;
    false

type t = {
  config : config;
  l1s : level array;  (** one per core *)
  l2 : level;
  l3 : level;
}

let create ?(config = itanium2_config) ~cores () =
  {
    config;
    l1s = Array.init cores (fun _ -> make_level config.l1);
    l2 = make_level config.l2;
    l3 = make_level config.l3;
  }

(** Latency in cycles of an access by [core] to byte address [addr].
    Lower levels are filled on a miss (inclusive hierarchy). *)
let access t ~core addr =
  let l1 = t.l1s.(core) in
  if access_level l1 addr then t.config.l1.hit_latency
  else if access_level t.l2 addr then t.config.l2.hit_latency
  else if access_level t.l3 addr then t.config.l3.hit_latency
  else t.config.memory_latency

type stats = { l1_hit_rate : float; l2_hit_rate : float; l3_hit_rate : float }

let hit_rate lvl =
  let total = lvl.hits + lvl.misses in
  if total = 0 then 1.0 else float_of_int lvl.hits /. float_of_int total

let stats t =
  {
    l1_hit_rate =
      (let h = Array.fold_left (fun acc l -> acc + l.hits) 0 t.l1s in
       let m = Array.fold_left (fun acc l -> acc + l.misses) 0 t.l1s in
       if h + m = 0 then 1.0 else float_of_int h /. float_of_int (h + m));
    l2_hit_rate = hit_rate t.l2;
    l3_hit_rate = hit_rate t.l3;
  }
