(** Bimodal branch predictor with 2-bit saturating counters, one table
    per core.  Misprediction penalty is 5 cycles (§8). *)

type t = {
  counters : int array;  (** 0..3; >=2 predicts taken *)
  mutable predictions : int;
  mutable mispredictions : int;
}

let table_size = 4096

let create () =
  { counters = Array.make table_size 1; predictions = 0; mispredictions = 0 }

let mispredict_penalty = 5

(* hash a (function, block) site into the table *)
let index ~site = ((site * 2654435761) land max_int) mod table_size

(** Record one dynamic branch outcome; returns the penalty in cycles
    (0 on correct prediction). *)
let access t ~site ~taken =
  let i = index ~site in
  let predicted_taken = t.counters.(i) >= 2 in
  t.predictions <- t.predictions + 1;
  let penalty =
    if predicted_taken = taken then 0
    else begin
      t.mispredictions <- t.mispredictions + 1;
      mispredict_penalty
    end
  in
  t.counters.(i) <-
    (if taken then min 3 (t.counters.(i) + 1) else max 0 (t.counters.(i) - 1));
  penalty

let misprediction_rate t =
  if t.predictions = 0 then 0.0
  else float_of_int t.mispredictions /. float_of_int t.predictions
