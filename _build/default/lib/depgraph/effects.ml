(** Static memory-effect summaries per function.

    For every function, which global regions it may read or write,
    directly or through callees, and which of its own array-parameter
    slots it may access.  The summaries feed the dependence graph: a
    call instruction inside a loop body behaves as an opaque operation
    reading/writing its summary, exactly how ORC's type-based alias
    view treats unanalyzed calls — the imprecision the paper's Fig. 19
    discussion attributes its cost-estimation outliers to.

    Builtins with hidden state get pseudo-regions: the LCG behind
    [rand]/[srand] is a read-write location (so [rand] in a loop is a
    genuine cross-iteration dependence, as in real programs), and the
    output stream behind the print builtins is modelled the same way to
    pin ordering. *)

open Spt_ir
module Iset = Set.Make (Int)

(** Pseudo region ids for builtin state. *)
let rng_region = -1

let io_region = -2

type summary = {
  sym_reads : Iset.t;  (** region sids, possibly pseudo ids *)
  sym_writes : Iset.t;
  param_reads : Iset.t;  (** own array-parameter slots *)
  param_writes : Iset.t;
}

let empty =
  {
    sym_reads = Iset.empty;
    sym_writes = Iset.empty;
    param_reads = Iset.empty;
    param_writes = Iset.empty;
  }

let union a b =
  {
    sym_reads = Iset.union a.sym_reads b.sym_reads;
    sym_writes = Iset.union a.sym_writes b.sym_writes;
    param_reads = Iset.union a.param_reads b.param_reads;
    param_writes = Iset.union a.param_writes b.param_writes;
  }

let equal a b =
  Iset.equal a.sym_reads b.sym_reads
  && Iset.equal a.sym_writes b.sym_writes
  && Iset.equal a.param_reads b.param_reads
  && Iset.equal a.param_writes b.param_writes

let builtin_summary name =
  if List.mem name Ir.pure_builtins then empty
  else
    match name with
    | "rand" | "srand" ->
      {
        empty with
        sym_reads = Iset.singleton rng_region;
        sym_writes = Iset.singleton rng_region;
      }
    | "print_int" | "print_float" ->
      {
        empty with
        sym_reads = Iset.singleton io_region;
        sym_writes = Iset.singleton io_region;
      }
    | _ -> empty

type t = (string, summary) Hashtbl.t

let find (t : t) name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None -> builtin_summary name

(* Effects of one instruction given the current summary table.
   [record ~read region] folds a region access into the summary under
   construction. *)
let instr_effects (t : t) (acc : summary) (i : Ir.instr) =
  let record ~write acc = function
    | Ir.Rsym s ->
      if write then { acc with sym_writes = Iset.add s.Ir.sid acc.sym_writes }
      else { acc with sym_reads = Iset.add s.Ir.sid acc.sym_reads }
    | Ir.Rparam (slot, _) ->
      if write then { acc with param_writes = Iset.add slot acc.param_writes }
      else { acc with param_reads = Iset.add slot acc.param_reads }
  in
  match i.Ir.kind with
  | Ir.Load (_, r, _) -> record ~write:false acc r
  | Ir.Store (r, _, _) -> record ~write:true acc r
  | Ir.Call (_, callee, args) ->
    let cs = find t callee in
    (* callee's global effects propagate as-is *)
    let acc =
      {
        acc with
        sym_reads = Iset.union acc.sym_reads cs.sym_reads;
        sym_writes = Iset.union acc.sym_writes cs.sym_writes;
      }
    in
    (* callee's parameter effects expand through the actual arguments *)
    let arr_args =
      List.filteri (fun _ a -> match a with Ir.Aarr _ -> true | _ -> false) args
      |> List.map (function Ir.Aarr r -> r | _ -> assert false)
    in
    List.fold_left
      (fun acc (slot, r) ->
        let acc =
          if Iset.mem slot cs.param_reads then record ~write:false acc r else acc
        in
        if Iset.mem slot cs.param_writes then record ~write:true acc r else acc)
      acc
      (List.mapi (fun slot r -> (slot, r)) arr_args)
  | _ -> acc

let func_summary t (f : Ir.func) =
  List.fold_left
    (fun acc bid ->
      List.fold_left (fun acc i -> instr_effects t acc i) acc
        (Ir.block f bid).Ir.instrs)
    empty (Ir.block_ids f)

(** Compute summaries for every function in [program] (fixpoint over
    the call graph, handling recursion). *)
let compute (program : Ir.program) : t =
  let t : t = Hashtbl.create 32 in
  List.iter (fun (name, _) -> Hashtbl.replace t name empty) program.Ir.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, f) ->
        let s = func_summary t f in
        if not (equal s (find t name)) then begin
          Hashtbl.replace t name s;
          changed := true
        end)
      program.Ir.funcs
  done;
  t

(** Effects of a single call instruction at its call site, expanded
    through its actual array arguments.  Returned as the summary of a
    phantom one-instruction function. *)
let call_site_effects (t : t) (i : Ir.instr) = instr_effects t empty i
