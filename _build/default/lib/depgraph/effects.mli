(** Static memory-effect summaries per function: which global regions a
    function may read or write, directly or through callees, and which
    of its own array-parameter slots it touches.  Builtins with hidden
    state use pseudo-region ids ([rand]'s LCG, the print stream), so a
    [rand] in a loop is a genuine cross-iteration dependence. *)

open Spt_ir
module Iset : module type of Set.Make (Int)

(** Pseudo region ids for builtin state. *)
val rng_region : int

val io_region : int

type summary = {
  sym_reads : Iset.t;  (** region sids, possibly pseudo ids *)
  sym_writes : Iset.t;
  param_reads : Iset.t;  (** own array-parameter slots *)
  param_writes : Iset.t;
}

val empty : summary
val union : summary -> summary -> summary
val equal : summary -> summary -> bool

(** Summary of a builtin by name. *)
val builtin_summary : string -> summary

type t = (string, summary) Hashtbl.t

(** Summary of [name], falling back to the builtin table. *)
val find : t -> string -> summary

(** Fixpoint summaries for every function of the program (handles
    recursion). *)
val compute : Ir.program -> t

(** Effects of a single call instruction, expanded through its actual
    array arguments. *)
val call_site_effects : t -> Ir.instr -> summary
