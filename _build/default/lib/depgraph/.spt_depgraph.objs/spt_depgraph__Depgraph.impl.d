lib/depgraph/depgraph.ml: Cfg Dep_profile Dominance Edge_profile Effects Float Format Hashtbl Int Ir Ir_pretty List Loops Option Printf Set Spt_ir Spt_profile Spt_util
