lib/depgraph/effects.mli: Hashtbl Int Ir Set Spt_ir
