lib/depgraph/depgraph.mli: Dep_profile Edge_profile Effects Hashtbl Int Ir Loops Set Spt_ir Spt_profile
