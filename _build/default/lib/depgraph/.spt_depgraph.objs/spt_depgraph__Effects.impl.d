lib/depgraph/effects.ml: Hashtbl Int Ir List Set Spt_ir
