(** Annotated data-dependence graph of one loop body (§4.1 of the
    paper).

    Nodes are the loop-body instructions ("operations", §4.2.2); edges
    carry a kind, a cross-iteration flag and a probability.  Register
    true dependences come from SSA def-use chains (the cross-iteration
    ones are the loop-header phi operands defined inside the body);
    memory dependences connect may-aliasing store/load pairs with
    profiled or static probabilities; anti/output dependences are the
    §5 code-motion legality constraints; control dependences link each
    branch's condition to the instructions and join phis it selects. *)

open Spt_ir
open Spt_profile
module Iset : module type of Set.Make (Int)

type dep_kind = Reg_true | Mem_true | Mem_anti | Mem_output | Control

val string_of_kind : dep_kind -> string

type edge = { src : int; dst : int; kind : dep_kind; cross : bool; prob : float }

type config = {
  dep_profile : Dep_profile.t option;
      (** profiled dependence probabilities (§7.3); [None] = static *)
  edge_profile : Edge_profile.t option;
      (** execution frequencies for violation probabilities (§4.2.3) *)
  static_mem_prob : float;
      (** probability of may-aliasing pairs without profile data *)
  include_control : bool;  (** put control edges in the graph *)
  violation_overrides : (int * float) list;
      (** per-instruction violation-probability overrides (SVP
          registers its predicted carried values here, §7.2) *)
  alias_model : [ `Exact | `Type_based ];
      (** [`Type_based] mimics ORC's type-based disambiguation on
          pointer-rich C: same-typed regions may alias (the paper's
          `basic` compilation) *)
  sym_ty : int -> Ir.ty option;  (** element type per region sid *)
}

val default_config : config

type t = {
  func : Ir.func;
  loop : Loops.loop;
  config : config;
  nodes : int list;  (** instruction iids, in body order *)
  instr_tbl : (int, Ir.instr * int * int) Hashtbl.t;
      (** iid -> (instruction, block, position) *)
  edges : edge list;
  succs : (int, edge list) Hashtbl.t;
  preds : (int, edge list) Hashtbl.t;
  exec_prob : (int, float) Hashtbl.t;
  freq : (int, float) Hashtbl.t;
  header_phis : int list;
  violation_tbl : (int, float) Hashtbl.t;
}

(** Lookups over graph nodes.  @raise Invalid_argument outside the body. *)
val instr : t -> int -> Ir.instr

val block_of : t -> int -> int
val mem : t -> int -> bool
val succs : t -> int -> edge list
val preds : t -> int -> edge list

(** Probability the node executes in an iteration (capped at 1). *)
val exec_prob : t -> int -> float

(** Uncapped executions per iteration (> 1 inside nested loops); the
    cost model weighs Cost(c) by this. *)
val freq : t -> int -> float

(** Control dependences of the loop's one-iteration body DAG: block ->
    controlling branch blocks.  Exposed for the SPT transformation. *)
val control_deps : Ir.func -> Loops.loop -> (int, int list) Hashtbl.t

(** Build the annotated graph of [loop] in [f] (which must be in SSA
    form), using [effects] for call summaries. *)
val build : ?config:config -> Effects.t -> Ir.func -> Loops.loop -> t

(** Cross-iteration true-dependence edges. *)
val cross_edges : t -> edge list

(** Violation candidates (§4.2.1): sources of cross-iteration true
    dependences, sorted. *)
val violation_candidates : t -> int list

(** Intra-iteration edges constraining code motion (true, anti, output,
    control) — the §5 legality closure runs over these. *)
val motion_edges : t -> edge list

(** Intra-iteration *true* dependence edges — the propagation edges of
    the cost graph. *)
val intra_true_edges : t -> edge list

(** Violation probability of a node (§4.2.3 step 1): how often per
    iteration it executes and modifies its result; conditional-update
    join phis get the modifying arms' probability, and registered
    overrides win. *)
val violation_prob : t -> int -> float

(** Render to Graphviz DOT (dashed = cross-iteration, as in Fig. 5). *)
val to_dot : t -> string
