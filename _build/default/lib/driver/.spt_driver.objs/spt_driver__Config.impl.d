lib/driver/config.ml: List Printf Select Spt_tlsim Spt_transform Unroll
