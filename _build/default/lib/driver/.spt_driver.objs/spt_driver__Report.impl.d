lib/driver/report.ml: Float List Option Pipeline Printf Spt_tlsim Spt_transform Spt_util Spt_workloads Stats Table Tls_machine
