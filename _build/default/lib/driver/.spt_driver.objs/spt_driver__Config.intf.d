lib/driver/config.mli: Select Spt_tlsim Spt_transform Unroll
