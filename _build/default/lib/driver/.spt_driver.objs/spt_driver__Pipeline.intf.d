lib/driver/pipeline.mli: Config Ir Select Spt_ir Spt_profile Spt_tlsim Spt_transform Tls_machine Unroll
