lib/driver/report.mli: Pipeline
