(** The workload registry: ten synthetic MiniC benchmarks named after
    and modelled on the SPEC2000Int programs the paper evaluates
    (eon and perlbmk were excluded there too, §8 footnote 4). *)

type workload = { name : string; source : string }

let all : workload list =
  [
    { name = W_bzip2.name; source = W_bzip2.source };
    { name = W_crafty.name; source = W_crafty.source };
    { name = W_gap.name; source = W_gap.source };
    { name = W_gcc.name; source = W_gcc.source };
    { name = W_gzip.name; source = W_gzip.source };
    { name = W_mcf.name; source = W_mcf.source };
    { name = W_parser.name; source = W_parser.source };
    { name = W_twolf.name; source = W_twolf.source };
    { name = W_vortex.name; source = W_vortex.source };
    { name = W_vpr.name; source = W_vpr.source };
  ]

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Suite.find: unknown workload %s" name)

(** Table 1's reference IPC values, for the EXPERIMENTS comparison. *)
let paper_ipc =
  [
    ("bzip2", 1.69);
    ("crafty", 1.49);
    ("gap", 1.30);
    ("gcc", 1.33);
    ("gzip", 1.77);
    ("mcf", 0.44);
    ("parser", 1.30);
    ("twolf", 1.05);
    ("vortex", 0.56);
    ("vpr", 1.22);
  ]
