(** crafty-like workload: bitboard move generation and evaluation.

    Register-dominated 64-bit logic (shifts, masks, popcounts) over a
    small board state — crafty's signature high-IPC profile.  The move
    scoring loop carries only an accumulating evaluation (a reduction)
    and a conditional best-move update, so the cost model prices it
    cheaply once profiling is in; the attack-table update loop writes a
    small table with genuine frequent conflicts and stays sequential. *)

let name = "crafty"

let source =
  {|
int NMOVES = 8192;
int ROUNDS = 6;
int move_from[8192];
int move_to[8192];
int piece_at[64];
int attack[64];
int score_tab[8192];
int checksum;

int popcount(int x) {
  int c = 0;
  while (x != 0) {
    x = x & (x - 1);
    c = c + 1;
  }
  return c;
}

void init_board() {
  int i;
  srand(424242);
  for (i = 0; i < 64; i = i + 1) {
    piece_at[i] = rand() & 7;
    attack[i] = 0;
  }
  /* deterministic move mixing: pure arithmetic and stores, exactly
     the shape even type-based analysis can clear */
  for (i = 0; i < NMOVES; i = i + 1) {
    int m = (i * 2654435761) & 2147483647;
    move_from[i] = (m >> 8) & 63;
    move_to[i] = (m >> 14) & 63;
  }
}

int score_move(int f, int t) {
  int occ = piece_at[f] * 8 + piece_at[t];
  int ray = (1 << (t & 31)) | (1 << (f & 31));
  int mob = popcount(ray & 2147483647);
  return occ * 16 + mob * 4 - ((f ^ t) & 15);
}

void main() {
  int r;
  int i;
  int total = 0;
  init_board();
  for (r = 0; r < ROUNDS; r = r + 1) {
    int best = -1000000;
    int bestm = -1;
    int acc = 0;
    /* move scoring: reduction + conditional best update */
    for (i = 0; i < NMOVES; i = i + 1) {
      int s = score_move(move_from[i], move_to[i]);
      score_tab[i] = s;
      acc = acc + s;
      if (s > best) {
        best = s;
        bestm = i;
      }
    }
    /* attack-table update: small table, frequent same-slot conflicts */
    for (i = 0; i < NMOVES; i = i + 1) {
      int sq = move_to[i] & 63;
      attack[sq] = attack[sq] + (score_tab[i] & 15);
    }
    total = total + acc + best + bestm + attack[r & 63];
    piece_at[r & 63] = (piece_at[r & 63] + 1) & 7;
    /* quiescence probe: a serial hash-chained walk through the attack
       table, like the transposition-table probes dominating real
       search — each step depends on the last, nothing to speculate */
    int h = bestm & 63;
    int probe;
    for (probe = 0; probe < 150000; probe = probe + 1) {
      h = (h * 131 + attack[h & 63] + probe) & 63;
      total = total + (h & 1);
    }
  }
  checksum = total;
  print_int(checksum);
}
|}
