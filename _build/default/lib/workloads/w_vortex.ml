(** vortex-like workload: object-database transactions.

    Wide records (8 fields) copied between multi-megabyte tables with
    field rewrites and index maintenance — the load/store-dominated,
    cache-missing profile behind vortex's 0.56 IPC.  The insert loop's
    only carried scalars are the cursor and a validity counter; the
    cross-table memory conflicts profiling must clear are between the
    index write of one transaction and the lookups of the next
    (rare by address). *)

let name = "vortex"

let source =
  {|
int NREC = 65536;
int TRANS = 24576;
int dbf[524288];
int dbt[524288];
int index_tab[65536];
int src_of[24576];
int dst_of[24576];
int checksum;

void init_db() {
  int i;
  int f;
  srand(90125);
  for (i = 0; i < NREC; i = i + 1) {
    for (f = 0; f < 8; f = f + 1) {
      dbf[i * 8 + f] = rand() & 65535;
    }
    index_tab[i] = i;
  }
  for (i = 0; i < TRANS; i = i + 1) {
    src_of[i] = rand() & 65535;
    dst_of[i] = rand() & 65535;
  }
}

void main() {
  int t;
  int f;
  int valid = 0;
  int total = 0;
  init_db();
  /* transaction loop: look up a source record through the index, copy
     and rewrite its fields into the target table, update the index */
  for (t = 0; t < TRANS; t = t + 1) {
    int src = index_tab[src_of[t]];
    int dst = dst_of[t];
    int key = dbf[src * 8];
    if (key != 0) {
      for (f = 0; f < 8; f = f + 1) {
        dbt[dst * 8 + f] = dbf[src * 8 + f] + f;
      }
      index_tab[dst] = src;
      valid = valid + 1;
    }
  }
  /* verification scan over the target table; the audit histogram's
     int-array store makes type-based disambiguation assume a conflict
     with the record loads, so only profiled compilations see through *)
  for (t = 0; t < NREC; t = t + 1) {
    int v0 = dbt[t * 8];
    total = total + v0 + dbt[t * 8 + 7];
    index_tab[(v0 + t) & 65535] = index_tab[(v0 + t) & 65535] + 1;
  }
  /* field audit: a tiny-bodied while loop over the source table —
     below the SPT body-size bar until while-loop unrolling lifts it */
  int audit = 0;
  int r2 = 0;
  while (r2 < 65536) {
    audit = audit + (dbf[r2 * 8 + 1] & 7);
    r2 = r2 + 1;
  }
  total = total + audit;
  /* integrity walk: a serial chain through the index, like the real
     vortex's object-graph traversals */
  int cur = 1;
  for (t = 0; t < 30000; t = t + 1) {
    cur = (index_tab[cur & 65535] + cur * 3 + t) & 65535;
    total = total + (cur & 3);
  }
  checksum = total + valid;
  print_int(checksum);
}
|}
