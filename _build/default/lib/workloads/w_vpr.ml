(** vpr-like workload: FPGA place-and-route cost sweeps.

    Floating-point bounding-box cost evaluation over nets (float adds,
    multiplies and a square root per net), a conditional best-swap
    update (a reduction the cost model prices low), and a routing-cost
    relaxation whose channel-occupancy array carries rare genuine
    conflicts.  Mixed int/float at a mid working set: vpr's ~1.2 IPC. *)

let name = "vpr"

let source =
  {|
int NNETS = 16384;
int PASSES = 3;
int nx[16384];
int ny[16384];
int mx[16384];
int my[16384];
int chan[1024];
float cost_tab[16384];
float wt[256];
int checksum;

void init_nets() {
  int i;
  srand(60601);
  for (i = 0; i < NNETS; i = i + 1) {
    nx[i] = rand() & 255;
    ny[i] = rand() & 255;
    mx[i] = rand() & 255;
    my[i] = rand() & 255;
  }
  for (i = 0; i < 1024; i = i + 1) { chan[i] = 0; }
  for (i = 0; i < 256; i = i + 1) { wt[i] = 1.0 + float_of_int(rand() & 7) * 0.125; }
}

void main() {
  int p;
  int i;
  float total = 0.0;
  int moved = 0;
  init_nets();
  for (p = 0; p < PASSES; p = p + 1) {
    float best = 1000000.0;
    /* bounding-box cost: float math per net, best-cost reduction */
    for (i = 0; i < NNETS; i = i + 1) {
      float dx = float_of_int(abs(nx[i] - mx[i]));
      float dy = float_of_int(abs(ny[i] - my[i]));
      /* the weight-table read and the cost-table write are both float
         accesses: type-based disambiguation must assume they conflict,
         so only the profiled compilations parallelize this loop */
      float c = (sqrt(dx * dx + dy * dy) + dx * 0.35 + dy * 0.35) * wt[i & 255];
      cost_tab[i] = c;
      if (c < best) { best = c; }
    }
    /* channel relaxation: occasional same-channel conflicts */
    for (i = 0; i < NNETS; i = i + 1) {
      int ch = (nx[i] * 4 + (ny[i] >> 6)) & 1023;
      if (cost_tab[i] > 100.0) {
        chan[ch] = chan[ch] + 1;
        moved = moved + 1;
      }
    }
    total = total + best;
  }
  for (i = 0; i < 1024; i = i + 1) { moved = moved + chan[i]; }
  /* overflow audit: small-bodied while loop over the nets, reachable
     only through while-loop unrolling */
  int over = 0;
  i = 0;
  while (i < NNETS) {
    over = over + ((nx[i] ^ my[i]) & 3);
    i = i + 1;
  }
  moved = moved + over;
  /* maze-route expansion: a serial wavefront through the channel
     graph, each step keyed by the last — the router's sequential core */
  int node = 7;
  for (i = 0; i < 650000; i = i + 1) {
    node = (node * 5 + chan[node & 1023] + (i & 31)) & 65535;
    moved = moved + (node & 1);
  }
  checksum = int_of_float(total * 1000.0) + moved;
  print_int(checksum);
}
|}
