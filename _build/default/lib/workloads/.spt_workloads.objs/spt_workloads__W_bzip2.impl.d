lib/workloads/w_bzip2.ml:
