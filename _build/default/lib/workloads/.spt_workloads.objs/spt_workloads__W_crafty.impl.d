lib/workloads/w_crafty.ml:
