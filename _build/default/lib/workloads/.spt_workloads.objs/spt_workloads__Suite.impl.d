lib/workloads/suite.ml: List Printf W_bzip2 W_crafty W_gap W_gcc W_gzip W_mcf W_parser W_twolf W_vortex W_vpr
