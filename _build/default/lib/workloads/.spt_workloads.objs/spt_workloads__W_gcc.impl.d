lib/workloads/w_gcc.ml:
