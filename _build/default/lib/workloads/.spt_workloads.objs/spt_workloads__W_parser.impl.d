lib/workloads/w_parser.ml:
