lib/workloads/w_twolf.ml:
