lib/workloads/w_gzip.ml:
