lib/workloads/suite.mli:
