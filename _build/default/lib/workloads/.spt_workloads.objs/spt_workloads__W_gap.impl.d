lib/workloads/w_gap.ml:
