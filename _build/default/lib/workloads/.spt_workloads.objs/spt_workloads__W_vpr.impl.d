lib/workloads/w_vpr.ml:
