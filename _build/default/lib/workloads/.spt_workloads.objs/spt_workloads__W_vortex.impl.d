lib/workloads/w_vortex.ml:
