lib/workloads/w_mcf.ml:
