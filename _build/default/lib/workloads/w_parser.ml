(** parser-like workload: dictionary-driven tokenization.

    The token scan advances a cursor by each token's length — lengths
    cluster hard around one value, so the cursor is exactly the
    [x = bar(x)] software-value-prediction case of the paper's Fig. 13.
    Dictionary probing walks small hash chains (while loops, unrollable
    only in the anticipated configuration), and the link-counting pass
    carries a genuine serial chain through [links]. *)

let name = "parser"

let source =
  {|
int TEXT = 32768;
int text[32768];
int dict_head[512];
int dict_next[2048];
int dict_word[2048];
int token_out[32768];
int links[2048];
int checksum;

void build_dict() {
  int i;
  srand(555);
  for (i = 0; i < 512; i = i + 1) { dict_head[i] = -1; }
  for (i = 0; i < 2048; i = i + 1) {
    int h = rand() & 511;
    dict_word[i] = rand() & 65535;
    dict_next[i] = dict_head[h];
    dict_head[h] = i;
    links[i] = 0;
  }
  for (i = 0; i < TEXT; i = i + 1) {
    /* words of length 4 with rare length-7 outliers */
    text[i] = rand() & 65535;
  }
}

int lookup(int w) {
  int h = w & 511;
  int e = dict_head[h];
  int depth = 0;
  while (e >= 0 && depth < 6) {
    if (dict_word[e] == w) { return e; }
    e = dict_next[e];
    depth = depth + 1;
  }
  return -1;
}

void main() {
  int pos = 0;
  int ntok = 0;
  int i;
  int total = 0;
  build_dict();
  /* token scan: cursor advances by token length (usually 4) */
  while (pos < TEXT - 8) {
    int w = text[pos] ^ (text[pos + 1] & 255);
    int e = lookup(w);
    int len = 4;
    if ((w & 1023) == 9) { len = 7; }
    token_out[ntok & 32767] = e;
    ntok = ntok + 1;
    pos = pos + len;
  }
  /* link counting: serial chain through the dictionary */
  int cur = 0;
  for (i = 0; i < 90000; i = i + 1) {
    links[cur] = links[cur] + 1;
    cur = (dict_word[cur] + links[cur]) & 2047;
  }
  for (i = 0; i < 2048; i = i + 1) { total = total + links[i]; }
  checksum = total + ntok;
  print_int(checksum);
}
|}
