(** gap-like workload: computer-algebra kernels — modular vector
    arithmetic with division (gap's IPC sits around 1.3 because of the
    integer divide latency), a polynomial evaluation with a serial
    Horner recurrence, and an order-counting loop whose only carried
    state is a counter reduction. *)

let name = "gap"

let source =
  {|
int N = 32768;
int P = 40961;
int va[32768];
int vb[32768];
int vc[32768];
int checksum;

void fill() {
  int i;
  srand(31337);
  for (i = 0; i < N; i = i + 1) {
    va[i] = rand() % 40961;
    vb[i] = 1 + (rand() % 40960);
  }
}

void main() {
  int i;
  int total = 0;
  int horner = 0;
  int orders = 0;
  fill();
  /* modular vector combine: independent iterations, divisions keep the
     pipeline busy — parallelizable once profiling clears the arrays */
  for (i = 0; i < N; i = i + 1) {
    int x = (va[i] * 7 + vb[i]) & 65535;
    int y = (va[i] / vb[i]) + (x & 255);
    int z = x + y;
    if (z >= P) { z = z - P; }
    vc[i] = z;
  }
  /* Horner evaluation: strict serial recurrence, several passes —
     the bulk of gap's runtime is this kind of carried arithmetic */
  int rep;
  for (rep = 0; rep < 8; rep = rep + 1) {
    for (i = 0; i < N; i = i + 1) {
      horner = (horner * 31 + va[i]) & 65535;
    }
  }
  /* order counting: a small-bodied while loop — only while-loop
     unrolling (anticipated) can lift it over the size bar */
  i = 0;
  while (i < N) {
    if (vc[i] < va[i]) {
      orders = orders + 1;
    }
    i = i + 1;
  }
  for (i = 0; i < N; i = i + 1) {
    total = total + vc[i];
  }
  /* spectral accumulation: 32 independent carried accumulators -- more
     violation candidates than the partition search will take on
     (the paper skips loops with too many candidates, 5.2.1) */
  int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
  int s4 = 0; int s5 = 0; int s6 = 0; int s7 = 0;
  int u0 = 0; int u1 = 0; int u2 = 0; int u3 = 0;
  int u4 = 0; int u5 = 0; int u6 = 0; int u7 = 0;
  int w0 = 0; int w1 = 0; int w2 = 0; int w3 = 0;
  int w4 = 0; int w5 = 0; int w6 = 0; int w7 = 0;
  int x0 = 0; int x1 = 0; int x2 = 0; int x3 = 0;
  int x4 = 0; int x5 = 0; int x6 = 0; int x7 = 0;
  for (i = 0; i < 4096; i = i + 1) {
    int v = va[i];
    s0 = s0 + (v & 1);       s1 = s1 + (v & 2);
    s2 = s2 + (v & 4);       s3 = s3 + (v & 8);
    s4 = s4 + (v & 16);      s5 = s5 + (v & 32);
    s6 = s6 + (v & 64);      s7 = s7 + (v & 128);
    u0 = u0 + (v & 256);     u1 = u1 + (v & 512);
    u2 = u2 + (v & 1024);    u3 = u3 + (v & 2048);
    u4 = u4 + (v & 4096);    u5 = u5 + (v & 8192);
    u6 = u6 ^ v;             u7 = u7 | (v & 3);
    w0 = w0 + (v >> 1);      w1 = w1 + (v >> 2);
    w2 = w2 + (v >> 3);      w3 = w3 + (v >> 4);
    w4 = w4 + (v >> 5);      w5 = w5 + (v >> 6);
    w6 = w6 + (v >> 7);      w7 = w7 + (v >> 8);
    x0 = x0 ^ (v << 1);      x1 = x1 ^ (v << 2);
    x2 = x2 + (v % 5);       x3 = x3 + (v % 7);
    x4 = x4 + (v % 11);      x5 = x5 + (v % 13);
    x6 = x6 + (v * 3);       x7 = x7 + (v * 5);
  }
  total = total + s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7
        + u0 + u1 + u2 + u3 + u4 + u5 + u6 + u7
        + w0 + w1 + w2 + w3 + w4 + w5 + w6 + w7
        + x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7;
  checksum = (total % P) + horner * 100000 + orders;
  print_int(checksum);
}
|}
