(** The workload registry: ten synthetic MiniC benchmarks named after
    and modelled on the SPEC2000Int programs the paper evaluates
    (eon and perlbmk were excluded there too, §8). *)

type workload = { name : string; source : string }

val all : workload list

(** @raise Invalid_argument on unknown names. *)
val find : string -> workload

(** Table 1's reference IPC values, for the EXPERIMENTS comparison. *)
val paper_ipc : (string * float) list
