(** twolf-like workload: simulated-annealing standard-cell placement.

    The accept/reject sweep is the real twolf's hot shape: compute a
    wirelength delta from coordinate arrays, accept the move only when
    it helps (or a pseudo-random threshold fires), and write the
    coordinates back *conditionally* — so the store→load cross-iteration
    probability is genuinely low, but a type-based view must assume a
    certain conflict: the workload that separates `best` from `basic`.
    The cost accumulator itself is a carried reduction.  The [rand]
    calls pin a serial thread through the LCG, as in any annealer. *)

let name = "twolf"

let source =
  {|
int NCELLS = 4096;
int SWEEPS = 5;
int xpos[4096];
int ypos[4096];
int net_a[4096];
int net_b[4096];
int rng_tab[4096];
int checksum;

void init_place() {
  int i;
  srand(11);
  for (i = 0; i < NCELLS; i = i + 1) {
    xpos[i] = rand() & 1023;
    ypos[i] = rand() & 1023;
    net_a[i] = rand() & 4095;
    net_b[i] = rand() & 4095;
    rng_tab[i] = rand() & 16383;
  }
}

int wire_cost(int c) {
  int ax = xpos[net_a[c] & 4095];
  int ay = ypos[net_a[c] & 4095];
  int bx = xpos[net_b[c] & 4095];
  int by = ypos[net_b[c] & 4095];
  return abs(ax - bx) + abs(ay - by);
}

void main() {
  int s;
  int c;
  int total_cost = 0;
  int accepts = 0;
  init_place();
  for (s = 0; s < SWEEPS; s = s + 1) {
    int threshold = 200 - s * 40;
    for (c = 0; c < NCELLS; c = c + 1) {
      int before = wire_cost(c);
      int nx = (xpos[c] + rng_tab[(c + s * 7) & 4095]) & 1023;
      int ny = (ypos[c] + rng_tab[(c * 3 + s) & 4095]) & 1023;
      int ox = xpos[c];
      int oy = ypos[c];
      xpos[c] = nx;
      ypos[c] = ny;
      int after = wire_cost(c);
      int delta = after - before;
      if (delta > threshold) {
        /* reject: restore */
        xpos[c] = ox;
        ypos[c] = oy;
      }
      else {
        accepts = accepts + 1;
        total_cost = total_cost + delta;
      }
    }
  }
  /* displacement audit: small-bodied while loop over the cells,
     below the body-size bar until while-loop unrolling lifts it */
  int d = 0;
  int c2 = 0;
  while (c2 < 30000) {
    d = d + abs(xpos[c2 & 4095] - ypos[(c2 * 7) & 4095]);
    c2 = c2 + 1;
  }
  /* net-order refinement: every step draws from the annealer's RNG, a
     serial thread through the generator state that pins the loop just
     as in the real annealer's move selection */
  int t;
  int h = 1;
  for (t = 0; t < 150000; t = t + 1) {
    int r = rand();
    h = (h + (r & 255) + rng_tab[(h + t) & 4095]) & 16383;
  }
  checksum = total_cost + accepts * 1000 + (h & 7) + (d & 15);
  print_int(checksum);
}
|}
