(** mcf-like workload: minimum-cost-flow network simplex skeleton.

    Two loop characters from the real mcf:
    - pointer chasing over an 8 MB successor array (far beyond L3):
      [j = next[j]] is a genuinely serial, unpredictable recurrence —
      no configuration can speculate it, and the memory misses crush
      IPC to mcf's signature ~0.44;
    - the arc-scan loop computes reduced costs from three parallel
      arrays with only a running-minimum reduction carried across
      iterations — a violation candidate whose re-execution slice is
      tiny, so the cost model prices it low and the loop parallelizes
      once dependence profiling clears the false arc-array conflicts. *)

let name = "mcf"

let source =
  {|
int NODES = 262144;
int ARCS = 262144;
int nxt[262144];
int cost[262144];
int pot[262144];
int from_n[262144];
int to_n[262144];
int red[262144];
int checksum;

void build_graph() {
  int i = 0;
  srand(999);
  while (i < NODES) {
    nxt[i] = rand() & 262143;
    cost[i] = (rand() & 4095) - 2048;
    pot[i] = rand() & 1023;
    from_n[i] = rand() & 262143;
    to_n[i] = rand() & 262143;
    i = i + 1;
  }
}

int chase(int start, int steps) {
  int j = start;
  int acc = 0;
  int k = 0;
  while (k < steps) {
    acc = acc + cost[j];
    j = (nxt[j] + k * 40503) & 262143;
    k = k + 1;
  }
  return acc + j;
}

void main() {
  int best;
  int besti;
  int i;
  int total = 0;
  build_graph();
  /* pointer chase: serial recurrence, memory bound */
  total = total + chase(7, 100000);
  /* arc scan: reduced-cost computation with a min reduction */
  best = 1000000;
  besti = -1;
  for (i = 0; i < ARCS; i = i + 1) {
    int rc = cost[i] - pot[from_n[i]] + pot[to_n[i]];
    red[i] = rc;
    if (rc < best) {
      best = rc;
      besti = i;
    }
  }
  total = total + best + besti;
  /* a second chase after repricing */
  total = total + chase(best & 262143, 70000);
  checksum = total;
  print_int(checksum);
}
|}
