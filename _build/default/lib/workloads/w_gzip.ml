(** gzip-like workload: LZ77 match finding over a pseudo-random byte
    buffer with hash-head chains.

    Loop characters (mirroring the real gzip's deflate inner loops):
    - the match-scan loop advances a cursor by the found match length —
      usually 1 (literal), so the cursor is stride-predictable and a
      prime software-value-prediction target (§7.2);
    - the hash-head update writes [head[h]] each iteration and reads it
      the next, but almost always at a *different* hash — a
      low-probability cross-iteration memory dependence that only
      dependence profiling can expose (type-based analysis sees a
      certain conflict);
    - the chain-walk is a small while loop, untouched without while-loop
      unrolling (Fig. 15's "too small" bucket).

    Working set is L1/L2-resident, register traffic dominates: high
    IPC, like the real gzip's 1.77. *)

let name = "gzip"

let source =
  {|
int WINDOW = 16384;
int HMASK = 1023;
int buf[16384];
int head[1024];
int prev[16384];
int match_len[16384];
int checksum;

int hash3(int a, int b, int c) {
  return ((a * 131 + b) * 131 + c) & 1023;
}

int longest_match(int pos, int cand, int limit) {
  int len = 0;
  while (len < limit) {
    if (buf[cand + len] != buf[pos + len]) {
      return len;
    }
    len = len + 1;
  }
  return len;
}

void fill_input() {
  int i = 0;
  srand(12345);
  while (i < WINDOW) {
    /* mostly-random bytes with occasional repeated motifs, so matches
       exist but literals dominate: the scan cursor usually advances by
       exactly 1, which is what makes it value-predictable */
    int r = rand() & 255;
    if ((r & 31) == 0) { r = 7; }
    buf[i] = r;
    i = i + 1;
  }
}

void main() {
  int pos;
  int emitted = 0;
  fill_input();
  for (pos = 0; pos < 1024; pos = pos + 1) { head[pos] = -1; }
  pos = 0;
  /* deflate scan: cursor advances by the match length (usually 1) */
  while (pos < WINDOW - 64) {
    int h = hash3(buf[pos], buf[pos + 1], buf[pos + 2]);
    int cand = head[h];
    int best = 1;
    int depth = 0;
    while (cand >= 0 && depth < 8) {
      int l = longest_match(pos, cand, 16);
      if (l > best) { best = l; }
      cand = prev[cand & 1023];
      depth = depth + 1;
    }
    match_len[pos] = best;
    prev[pos & 1023] = head[h];
    head[h] = pos;
    emitted = emitted + 1;
    pos = pos + best;
  }
  /* histogram of match lengths: a small-bodied while loop — invisible
     to DO-loop unrolling, so only the anticipated compilation can lift
     it over the body-size bar */
  pos = 0;
  while (pos < WINDOW - 64) {
    int l = match_len[pos];
    int slot = (l * 37 + (pos & 255)) & 1023;
    head[slot] = head[slot] + prev[pos & 1023];
    pos = pos + 1;
  }
  checksum = emitted;
  for (pos = 0; pos < 1024; pos = pos + 1) {
    checksum = checksum + head[pos];
  }
  /* adler-style rolling checksum: a strict serial recurrence through
     s1/s2 with a modulus — never speculatable, like the real gzip's
     crc pass */
  int s1 = 1;
  int s2 = 0;
  int rep;
  for (rep = 0; rep < 22; rep = rep + 1) {
    for (pos = 0; pos < WINDOW; pos = pos + 1) {
      s1 = s1 + buf[pos];
      if (s1 >= 65521) { s1 = s1 - 65521; }
      s2 = s2 + s1;
      if (s2 >= 65521) { s2 = s2 - 65521; }
    }
  }
  checksum = checksum + s2 * 65536 + s1;
  print_int(checksum);
}
|}
