(** bzip2-like workload: move-to-front coding plus run-length and
    frequency accounting over a block.

    - The MTF loop carries a true dependence through the whole 64-entry
      table every iteration (scan + shift): speculation cannot help, but
      the code is pure register/L1 traffic, giving bzip2's high IPC.
    - The run-length pass reads the MTF output stream with only an
      index/accumulator carried — cheap to reorder pre-fork.
    - The frequency pass updates [freq[sym]] where consecutive symbols
      rarely collide: profiled cross-iteration probability is low, the
      type-based view is a certain conflict — a `best`-vs-`basic`
      separator. *)

let name = "bzip2"

let source =
  {|
int BLOCK = 24576;
int data[24576];
int mtf_out[24576];
int mtf_tab[64];
int freq[64];
int rle[24576];
int checksum;

void fill_block() {
  int i = 0;
  srand(777);
  while (i < BLOCK) {
    int r = rand() & 4095;
    /* skewed symbol distribution: small symbols dominate */
    if (r < 2048) { data[i] = r & 7; }
    else {
      if (r < 3584) { data[i] = r & 15; }
      else { data[i] = r & 63; }
    }
    i = i + 1;
  }
}

void mtf_encode() {
  int i;
  int j;
  for (i = 0; i < 64; i = i + 1) { mtf_tab[i] = i; }
  for (i = 0; i < BLOCK; i = i + 1) {
    int sym = data[i];
    int p = 0;
    while (mtf_tab[p] != sym) { p = p + 1; }
    mtf_out[i] = p;
    j = p;
    while (j > 0) {
      mtf_tab[j] = mtf_tab[j - 1];
      j = j - 1;
    }
    mtf_tab[0] = sym;
  }
}

int run_lengths() {
  int i;
  int runs = 0;
  int cur = -1;
  int len = 0;
  for (i = 0; i < BLOCK; i = i + 1) {
    if (mtf_out[i] == cur) { len = len + 1; }
    else {
      rle[runs & 24575] = len;
      runs = runs + 1;
      cur = mtf_out[i];
      len = 1;
    }
  }
  return runs;
}

void count_freqs() {
  int i;
  for (i = 0; i < 64; i = i + 1) { freq[i] = 0; }
  for (i = 0; i < BLOCK; i = i + 1) {
    int s = mtf_out[i];
    freq[s] = freq[s] + 1;
  }
}

void main() {
  int i;
  int total = 0;
  fill_block();
  mtf_encode();
  total = run_lengths();
  count_freqs();
  for (i = 0; i < 64; i = i + 1) {
    total = total + freq[i] * i;
  }
  checksum = total;
  print_int(checksum);
}
|}
