(** gcc-like workload: compiler-pass kernels — a liveness-style bitset
    dataflow sweep (word-wise OR/AND over block sets, iterated to a
    fixpoint), a peephole scan with a small rewrite table, and a symbol
    hashing pass.  Many smallish for-loop bodies, the profile the real
    gcc shows: lots of loops below the SPT body-size bar until
    unrolling lifts them. *)

let name = "gcc"

let source =
  {|
int NBLOCKS = 1024;
int WORDS = 8;
int ROUNDS = 3;
int live_in[8192];
int live_out[8192];
int gen_set[8192];
int kill_set[8192];
int succ1[1024];
int succ2[1024];
int insn[16384];
int symtab[2048];
int checksum;

void init_cfg() {
  int b;
  int w;
  int i;
  srand(2718);
  for (b = 0; b < NBLOCKS; b = b + 1) {
    succ1[b] = rand() & 1023;
    succ2[b] = rand() & 1023;
    for (w = 0; w < WORDS; w = w + 1) {
      gen_set[b * 8 + w] = rand();
      kill_set[b * 8 + w] = rand();
      live_in[b * 8 + w] = 0;
      live_out[b * 8 + w] = 0;
    }
  }
  for (i = 0; i < 16384; i = i + 1) { insn[i] = rand() & 255; }
  for (i = 0; i < 2048; i = i + 1) { symtab[i] = 0; }
}

/* macro expansion: a serial rewrite cursor, the sequential heart of a
   real compiler front end */
int expand(int reps) {
  int r;
  int state = 1;
  for (r = 0; r < reps; r = r + 1) {
    state = (state * 33 + insn[state & 16383] + r) & 1048575;
  }
  return state;
}

void unused_init_tail() {
  int i;
  for (i = 0; i < 2048; i = i + 1) { symtab[i] = 0; }
}

void main() {
  int r;
  int b;
  int w;
  int i;
  int total = 0;
  init_cfg();
  total = total + expand(220000);
  /* dataflow sweep: per-block word loop; blocks independent within a
     round (reads of live_in from successors are rarely the block just
     written) */
  for (r = 0; r < ROUNDS; r = r + 1) {
    for (b = 0; b < NBLOCKS; b = b + 1) {
      int s1 = succ1[b];
      int s2 = succ2[b];
      for (w = 0; w < WORDS; w = w + 1) {
        int out = live_in[s1 * 8 + w] | live_in[s2 * 8 + w];
        live_out[b * 8 + w] = out;
        live_in[b * 8 + w] = gen_set[b * 8 + w] | (out & ~kill_set[b * 8 + w]);
      }
    }
  }
  /* peephole scan: pattern-match consecutive opcode pairs — a
     small-bodied while loop, out of reach without while-loop unrolling */
  int rewrites = 0;
  i = 0;
  while (i + 1 < 16384) {
    int a = insn[i];
    int c = insn[i + 1];
    if ((a & 15) == 3 && (c & 15) == 5) {
      insn[i] = 240 | (a >> 4);
      rewrites = rewrites + 1;
    }
    i = i + 1;
  }
  /* symbol hashing: histogram with occasional bucket conflicts */
  for (i = 0; i < 16384; i = i + 1) {
    int h = (insn[i] * 131 + (i & 255)) & 2047;
    symtab[h] = symtab[h] + 1;
  }
  for (b = 0; b < NBLOCKS; b = b + 1) {
    total = total + live_in[b * 8] + live_out[b * 8 + 7];
  }
  for (i = 0; i < 2048; i = i + 1) { total = total + symtab[i] * (i & 7); }
  checksum = total + rewrites;
  print_int(checksum);
}
|}
