lib/partition/partition.mli: Depgraph Hashtbl Int Set Spt_cost Spt_depgraph
