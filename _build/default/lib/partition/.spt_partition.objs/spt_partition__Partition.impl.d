lib/partition/partition.ml: Array Cost_model Depgraph Float Fun Hashtbl Int Ir List Loops Option Set Spt_cost Spt_depgraph Spt_ir Spt_util
