(** SPT loop selection criteria (§3.2 pass 1 screening, §6.1 final
    criteria) and the rejection taxonomy behind Fig. 15. *)

type thresholds = {
  min_body_size : int;  (** §6.1-3a: amortize the fork overhead *)
  max_body_size : int;  (** §6.1-3b: hardware buffering (paper: 1000) *)
  min_trip_count : float;  (** §6.1-4 (paper: 2) *)
  cost_fraction : float;  (** §6.1-1: cost below this fraction of body *)
  prefork_fraction : float;  (** §6.1-2 *)
}

val default_thresholds : thresholds

type reject_reason =
  | Body_too_small
  | Body_too_large
  | Trip_count_too_small
  | Too_many_vcs of int
  | Cost_too_high of float
  | Prefork_too_large of int
  | Not_transformable of string
  | Nested_conflict
      (** a better loop in the same nest was transformed instead *)

val string_of_reason : reject_reason -> string

(** Bucketing used by the Fig. 15 breakdown. *)
val bucket_of_reason :
  reject_reason ->
  [ `Small_body | `Large_body | `Small_trip | `Many_vcs | `High_cost
  | `Untransformable | `Nested ]

(** Cheap structural screening applied to every loop in pass 1. *)
val initial_check :
  thresholds -> body_size:int -> trip_count:float -> (unit, reject_reason) result

(** Final criteria on a loop's optimal partition (pass 2). *)
val final_check :
  thresholds ->
  body_size:int ->
  cost:float ->
  prefork_size:int ->
  (unit, reject_reason) result

(** Expected-benefit estimate used to rank loops competing in one nest:
    speculative overlap minus misspeculation and pre-fork serialization,
    weighted by trip count and profile weight. *)
val benefit :
  body_size:int ->
  cost:float ->
  prefork_size:int ->
  trip_count:float ->
  weight:float ->
  float
