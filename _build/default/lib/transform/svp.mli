(** Software value prediction (§7.2, Fig. 13).

    For a loop-carried scalar with a profiled stride, {!apply} inserts
    a prediction at the top of the body and a check-and-recover diamond
    on the back edge, retargeting the header phi through the selection.
    The driver then (1) forces the prediction instruction into the
    pre-fork region and (2) coalesces both phis onto the prediction
    register at SSA destruction ({!phi_primed}), so the carried
    register is written *before* the fork with the predicted value; on
    a correct prediction the post-fork writes are value-identical
    copies, which the TLS machine's value-based register validation
    does not count as violations. *)

open Spt_ir

type applied = {
  target_phi : int;  (** iid of the predicted header phi *)
  predict_iid : int;  (** iid of [xp := x + stride] — force pre-fork *)
  sel_phi_iid : int;  (** iid of the check-join phi (the new violation
                          candidate; override its violation probability
                          with the misprediction rate) *)
  sel_phi_vid : int;
  header_phi_vid : int;
  primed : Ir.var;  (** the prediction register both phis coalesce onto *)
  recover_block : int;  (** profiled for the misprediction rate *)
  stride : int64;
}

(** Carried integer scalars of [loop]: [(header phi iid, defining iid of
    the carried value)] pairs — the defining instructions are the value
    profiler's targets. *)
val candidates : Ir.func -> Loops.loop -> (int * int) list

(** Rewrite one carried phi; [None] when the shape does not allow it
    (multiple latches, non-integer, …).  The function must be in SSA
    form. *)
val apply : Ir.func -> Loops.loop -> phi_iid:int -> stride:int64 -> applied option

(** The [phi_primed] function for {!Spt_ir.Ssa.destruct} covering all
    predictions applied to one function. *)
val phi_primed : applied list -> int -> Ir.var option
