lib/transform/svp.mli: Ir Loops Spt_ir
