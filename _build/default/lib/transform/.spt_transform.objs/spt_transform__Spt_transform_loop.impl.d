lib/transform/spt_transform_loop.ml: Cfg Depgraph Hashtbl Int Ir List Loops Option Set Spt_depgraph Spt_ir
