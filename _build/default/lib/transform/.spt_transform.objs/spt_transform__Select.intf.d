lib/transform/select.mli:
