lib/transform/spt_transform_loop.mli: Depgraph Int Ir Loops Set Spt_depgraph Spt_ir
