lib/transform/svp.ml: Cfg Hashtbl Int Ir List Loops Set Spt_ir
