lib/transform/unroll.mli: Ir Loops Spt_ir
