lib/transform/select.ml: Float Printf
