lib/transform/unroll.ml: Cfg Hashtbl Int Ir List Loops Map Spt_ir
