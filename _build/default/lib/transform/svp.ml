(** Software value prediction (§7.2, Fig. 13).

    For a loop-carried scalar whose successive values follow a stride
    (profiled by {!Spt_profile.Value_profile}), the rewrite

    - inserts a prediction [xp := x1 + stride] at the top of the body,
      which the driver then forces into the pre-fork region;
    - splits the back edge and inserts the check-and-recover diamond:
      [if (carried != xp) carried := carried] — concretely a compare, a
      recovery arm, and a join phi [xsel = phi(ok: xp, rec: carried)];
    - retargets the header phi's back-edge operand to [xsel].

    At SSA-destruction time both the header phi and the join phi are
    coalesced onto [xp] (via [Ssa.destruct ~phi_primed]); the carried
    register is then *written before the fork* with the predicted
    value, so the speculative thread reads a usually-correct value from
    its forked context.  On a correct prediction the post-fork writes
    to that register are value-identical copies, which the TLS
    machine's value-based register validation does not count as
    violations; on a misprediction the recovery arm writes the true
    value and a genuine violation (plus its re-execution) occurs —
    exactly the paper's "software check and recovery code to detect and
    correct potential value mis-prediction". *)

open Spt_ir
module Iset = Set.Make (Int)

(** One applied prediction. *)
type applied = {
  target_phi : int;  (** iid of the header phi being predicted *)
  predict_iid : int;  (** iid of the prediction instruction [xp := x1+c] *)
  sel_phi_iid : int;  (** iid of the check-join phi *)
  sel_phi_vid : int;  (** vid defined by the check-join phi *)
  header_phi_vid : int;  (** vid defined by the header phi *)
  primed : Ir.var;  (** xp — coalescing target for both phis *)
  recover_block : int;  (** bid of the recovery arm (profiled for the
                            misprediction rate) *)
  stride : int64;
}

(** Candidate carried variables of [loop]: header phis of integer type
    whose back-edge operand is defined inside the loop.  Returns
    [(phi iid, defining iid of the carried value)] pairs — the defining
    instructions are what the value profiler should watch. *)
let candidates (f : Ir.func) (loop : Loops.loop) =
  let latch_set = Iset.of_list loop.Loops.latches in
  let def_site = Hashtbl.create 64 in
  Loops.Iset.iter
    (fun bid ->
      List.iter
        (fun (i : Ir.instr) ->
          match Ir.def_of_kind i.Ir.kind with
          | Some d -> Hashtbl.replace def_site d.Ir.vid i.Ir.iid
          | None -> ())
        (Ir.block f bid).Ir.instrs)
    loop.Loops.body;
  List.filter_map
    (fun (i : Ir.instr) ->
      match i.Ir.kind with
      | Ir.Phi (d, ins) when d.Ir.vty = Ir.I64 -> (
        let latch_def =
          List.find_map
            (fun (p, o) ->
              match o with
              | Ir.Reg v when Iset.mem p latch_set ->
                Hashtbl.find_opt def_site v.Ir.vid
              | _ -> None)
            ins
        in
        match latch_def with
        | Some def_iid -> Some (i.Ir.iid, def_iid)
        | None -> None)
      | _ -> None)
    (Ir.block f loop.Loops.header).Ir.instrs

(** Apply the prediction rewrite to one header phi.  The function must
    be in SSA form; the loop must have a single latch.  Returns [None]
    when the shape does not allow the rewrite. *)
let apply (f : Ir.func) (loop : Loops.loop) ~(phi_iid : int) ~(stride : int64) :
    applied option =
  match loop.Loops.latches with
  | [ latch ] -> (
    let header = Ir.block f loop.Loops.header in
    let phi_instr =
      List.find_opt (fun (i : Ir.instr) -> i.Ir.iid = phi_iid) header.Ir.instrs
    in
    match phi_instr with
    | Some ({ Ir.kind = Ir.Phi (d, ins); _ } as phi) when d.Ir.vty = Ir.I64 -> (
      match List.assoc_opt latch ins with
      | Some (Ir.Reg carried) ->
        (* prediction at the top of the body: right after the header's
           in-loop continuation begins.  We simply prepend it to the
           header's (unique) in-loop successor when the header holds the
           exit test, or append after the phis otherwise; either spot is
           executed exactly once per iteration and dominated by the phi. *)
        let xp = Ir.fresh_var f ~name:(d.Ir.vname ^ "_pred") ~ty:Ir.I64 in
        let predict = Ir.mk_instr f (Ir.Binop (xp, Ir.Add, Ir.Reg d, Ir.Imm_i stride)) in
        let in_loop_succs =
          List.filter
            (fun s -> Loops.Iset.mem s loop.Loops.body && s <> loop.Loops.header)
            (Ir.term_succs header.Ir.term)
        in
        (match in_loop_succs with
        | [ body_entry ] ->
          (* insert on the header -> body_entry edge so conditional
             headers stay intact *)
          let mid = Cfg.split_edge f ~src:loop.Loops.header ~dst:body_entry in
          Ir.append_instr mid predict
        | _ ->
          (* single-block or unconditional header: after the phis *)
          let phis, rest =
            List.partition (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind) header.Ir.instrs
          in
          header.Ir.instrs <- phis @ (predict :: rest));
        (* check-and-recover diamond on the back edge *)
        let chk = Cfg.split_edge f ~src:latch ~dst:loop.Loops.header in
        let ck = Ir.fresh_var f ~name:(d.Ir.vname ^ "_mp") ~ty:Ir.I64 in
        Ir.append_instr chk (Ir.mk_instr f (Ir.Binop (ck, Ir.Ne, Ir.Reg carried, Ir.Reg xp)));
        let rec_blk = Ir.add_block f in
        let join = Ir.add_block f in
        rec_blk.Ir.term <- Ir.Jump join.Ir.bid;
        join.Ir.term <- Ir.Jump loop.Loops.header;
        chk.Ir.term <- Ir.Br (Ir.Reg ck, rec_blk.Ir.bid, join.Ir.bid);
        let xsel = Ir.fresh_var f ~name:(d.Ir.vname ^ "_sel") ~ty:Ir.I64 in
        let sel_phi =
          Ir.mk_instr f
            (Ir.Phi (xsel, [ (chk.Ir.bid, Ir.Reg xp); (rec_blk.Ir.bid, Ir.Reg carried) ]))
        in
        Ir.prepend_instr join sel_phi;
        (* every header phi's back-edge operand now arrives via the join *)
        Cfg.retarget_phis header ~old_pred:chk.Ir.bid ~new_pred:join.Ir.bid;
        (* and the predicted phi's carried value becomes the selection *)
        (match phi.Ir.kind with
        | Ir.Phi (d', ins') ->
          phi.Ir.kind <-
            Ir.Phi
              ( d',
                List.map
                  (fun (p, o) ->
                    if p = join.Ir.bid then (p, Ir.Reg xsel) else (p, o))
                  ins' )
        | _ -> assert false);
        ignore ins;
        Some
          {
            target_phi = phi_iid;
            predict_iid = predict.Ir.iid;
            sel_phi_iid = sel_phi.Ir.iid;
            sel_phi_vid = xsel.Ir.vid;
            header_phi_vid = d.Ir.vid;
            primed = xp;
            recover_block = rec_blk.Ir.bid;
            stride;
          }
      | _ -> None)
    | _ -> None)
  | _ -> None

(** The [phi_primed] function to pass to {!Spt_ir.Ssa.destruct} for a
    function whose loops carry the given applied predictions. *)
let phi_primed (applied : applied list) vid =
  List.find_map
    (fun a ->
      if vid = a.sel_phi_vid || vid = a.header_phi_vid then Some a.primed
      else None)
    applied
