(** Loop unrolling (§7.1).

    The SPT compilation unrolls loops whose bodies are too small to
    amortize the thread-fork overhead.  Unrolling happens on the
    *pre-SSA* IR (mirroring ORC, where LNO unrolls before WOPT): the
    whole loop body — header and exit tests included — is cloned
    [factor-1] times and the copies are chained through the back edge.
    Keeping every exit test makes the transformation legal for any
    iteration count and any loop shape, with no remainder loop needed.

    Policy mirrors the paper: ORC's LNO "can only unroll DO loops", so
    the `basic` and `best` configurations unroll only loops whose
    header carries a [`For] origin tag; while-loop unrolling is one of
    the manually-applied techniques of the `anticipated best`
    configuration (§8), enabled here with [unroll_while:true]. *)

open Spt_ir
module Imap = Map.Make (Int)

type policy = {
  min_body_size : int;  (** unroll until the body reaches this size *)
  max_factor : int;
  unroll_while : bool;  (** also unroll While/Do loops (anticipated) *)
}

let default_policy = { min_body_size = 120; max_factor = 8; unroll_while = false }

(* static size of a loop body in elementary ops *)
let loop_body_size (f : Ir.func) (l : Loops.loop) =
  Loops.Iset.fold (fun bid acc -> acc + Ir.block_size (Ir.block f bid)) l.Loops.body 0

(** Clone the loop body once; returns the mapping old-bid -> new-bid.
    Clones jump among themselves; edges leaving the body keep their
    original (outside) targets; the back edge is left pointing at a
    placeholder resolved by the caller. *)
let clone_body (f : Ir.func) (l : Loops.loop) =
  let mapping =
    Loops.Iset.fold
      (fun bid acc -> Imap.add bid (Ir.add_block f).Ir.bid acc)
      l.Loops.body Imap.empty
  in
  Loops.Iset.iter
    (fun bid ->
      let src = Ir.block f bid in
      let dst = Ir.block f (Imap.find bid mapping) in
      dst.Ir.instrs <-
        List.map (fun (i : Ir.instr) -> Ir.mk_instr f i.Ir.kind) src.Ir.instrs;
      let sub t = match Imap.find_opt t mapping with Some t' -> t' | None -> t in
      dst.Ir.term <-
        (match src.Ir.term with
        | Ir.Jump t -> Ir.Jump (sub t)
        | Ir.Br (c, t, e) -> Ir.Br (c, sub t, sub e)
        | Ir.Ret _ as t -> t))
    l.Loops.body;
  mapping

(** Unroll [l] by [factor] (>= 2).  The function must not be in SSA
    form.  Back edges of copy [k] are redirected to the header copy of
    [k+1]; the last copy's back edges return to the original header. *)
let unroll_loop (f : Ir.func) (l : Loops.loop) ~factor =
  if factor < 2 then invalid_arg "Unroll.unroll_loop: factor must be >= 2";
  (* check: no instruction in the body is a phi *)
  Loops.Iset.iter
    (fun bid ->
      List.iter
        (fun (i : Ir.instr) ->
          if Ir.is_phi i.Ir.kind then
            invalid_arg "Unroll.unroll_loop: function is in SSA form")
        (Ir.block f bid).Ir.instrs)
    l.Loops.body;
  let copies = List.init (factor - 1) (fun _ -> clone_body f l) in
  (* chain: original -> copy0 -> copy1 -> ... -> original *)
  let next_header_of = function
    | [] -> l.Loops.header
    | mapping :: _ -> Imap.find l.Loops.header mapping
  in
  let redirect_back_edges in_mapping to_header =
    List.iter
      (fun latch ->
        let lbid =
          match in_mapping with
          | None -> latch
          | Some m -> Imap.find latch m
        in
        let lb = Ir.block f lbid in
        Cfg.retarget_term lb
          ~old_dst:(match in_mapping with
                   | None -> l.Loops.header
                   | Some m -> Imap.find l.Loops.header m)
          ~new_dst:to_header)
      l.Loops.latches
  in
  (* original's latches go to the first copy *)
  redirect_back_edges None (next_header_of copies);
  (* copy k's latches go to copy k+1's header (or back to the original) *)
  let rec chain = function
    | [] -> ()
    | [ last ] -> redirect_back_edges (Some last) l.Loops.header
    | m :: (next :: _ as rest) ->
      redirect_back_edges (Some m) (Imap.find l.Loops.header next);
      chain rest
  in
  chain copies;
  (* cloned headers are not headers of the (single) unrolled loop *)
  List.iter
    (fun m ->
      (Ir.block f (Imap.find l.Loops.header m)).Ir.loop_origin <- None)
    copies

(** Decide a factor for [l] under [policy]: smallest power of two that
    lifts the body above [min_body_size], capped at [max_factor];
    1 means "do not unroll". *)
let factor_for (f : Ir.func) (l : Loops.loop) policy =
  let eligible =
    match l.Loops.origin with
    | Some `For -> true
    | Some `While | Some `Do -> policy.unroll_while
    | None -> false
  in
  if not eligible then 1
  else
    let size = loop_body_size f l in
    if size <= 0 then 1
    else
      let rec grow factor =
        if factor >= policy.max_factor then policy.max_factor
        else if size * factor >= policy.min_body_size then factor
        else grow (factor * 2)
      in
      grow 1

(** Unroll every eligible innermost loop of [f] under [policy]; returns
    the number of loops unrolled.  Loops are re-discovered after each
    unrolling because block sets change. *)
let run (f : Ir.func) policy =
  let unrolled = ref 0 in
  let continue_ = ref true in
  (* headers already processed (by bid) — each original loop is
     unrolled at most once *)
  let done_headers = Hashtbl.create 8 in
  while !continue_ do
    continue_ := false;
    let loops = Loops.innermost (Loops.find f) in
    match
      List.find_opt
        (fun l ->
          (not (Hashtbl.mem done_headers l.Loops.header))
          && factor_for f l policy > 1)
        loops
    with
    | Some l ->
      Hashtbl.replace done_headers l.Loops.header ();
      unroll_loop f l ~factor:(factor_for f l policy);
      incr unrolled;
      continue_ := true
    | None -> ()
  done;
  !unrolled
