(** SPT loop selection (§3.2, §6.1).

    Pass 1's *initial selection* applies the cheap structural criteria
    (body size bounds, profiled iteration count) to every loop before
    the expensive partition search runs; pass 2's *final selection*
    applies the cost and pre-fork-size criteria to the optimal
    partition and resolves nesting (at most one loop per nest is
    speculatively parallelized, preferring the better candidate).

    Rejection reasons are preserved — they are the Fig. 15 breakdown. *)

type thresholds = {
  min_body_size : int;
      (** §6.1 criterion 3a: amortize the fork overhead *)
  max_body_size : int;
      (** §6.1 criterion 3b: hardware buffering limit (paper: 1000) *)
  min_trip_count : float;  (** §6.1 criterion 4 (paper: 2) *)
  cost_fraction : float;
      (** §6.1 criterion 1: cost must be below this fraction of the
          loop body size *)
  prefork_fraction : float;  (** §6.1 criterion 2 *)
}

let default_thresholds =
  {
    min_body_size = 60;
    max_body_size = 1000;
    min_trip_count = 2.0;
    cost_fraction = 0.12;
    prefork_fraction = 0.34;
  }

type reject_reason =
  | Body_too_small
  | Body_too_large
  | Trip_count_too_small
  | Too_many_vcs of int
  | Cost_too_high of float
  | Prefork_too_large of int
  | Not_transformable of string
  | Nested_conflict
      (** a better loop in the same nest was selected instead *)

let string_of_reason = function
  | Body_too_small -> "body too small"
  | Body_too_large -> "body too large"
  | Trip_count_too_small -> "iteration count too small"
  | Too_many_vcs n -> Printf.sprintf "too many violation candidates (%d)" n
  | Cost_too_high c -> Printf.sprintf "misspeculation cost too high (%.1f)" c
  | Prefork_too_large n -> Printf.sprintf "pre-fork region too large (%d)" n
  | Not_transformable s -> "not transformable: " ^ s
  | Nested_conflict -> "conflicting loop in the same nest selected"

(** Bucket used by the Fig. 15 breakdown. *)
let bucket_of_reason = function
  | Body_too_small -> `Small_body
  | Body_too_large -> `Large_body
  | Trip_count_too_small -> `Small_trip
  | Too_many_vcs _ -> `Many_vcs
  | Cost_too_high _ | Prefork_too_large _ -> `High_cost
  | Not_transformable _ -> `Untransformable
  | Nested_conflict -> `Nested

(** Initial (pass 1) structural screening. *)
let initial_check th ~body_size ~trip_count =
  if body_size < th.min_body_size then Error Body_too_small
  else if body_size > th.max_body_size then Error Body_too_large
  else if trip_count < th.min_trip_count then Error Trip_count_too_small
  else Ok ()

(** Final (pass 2) criteria on the optimal partition. *)
let final_check th ~body_size ~cost ~prefork_size =
  if cost > th.cost_fraction *. float_of_int body_size then
    Error (Cost_too_high cost)
  else if
    float_of_int prefork_size > th.prefork_fraction *. float_of_int body_size
  then Error (Prefork_too_large prefork_size)
  else Ok ()

(** Expected per-loop-instance benefit estimate used to rank loops in
    the same nest: speculative overlap minus misspeculation and
    sequential pre-fork losses, per iteration, scaled by coverage
    weight.  Crude but monotone in the quantities that matter. *)
let benefit ~body_size ~cost ~prefork_size ~trip_count ~weight =
  let body = float_of_int body_size in
  let overlap = (body -. float_of_int prefork_size) /. 2.0 in
  let per_iter = overlap -. cost in
  per_iter *. Float.min trip_count 1000.0 *. weight /. Float.max body 1.0
