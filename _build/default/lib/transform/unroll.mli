(** Loop unrolling (§7.1).

    Runs on the pre-SSA IR (as ORC's LNO runs before WOPT): the whole
    loop — exit tests included — is cloned and chained through the back
    edge, which is legal for any shape and iteration count.  Policy
    mirrors the paper: only [`For]-origin loops by default (ORC "can
    only unroll DO loops"); while/do loops with [unroll_while], the
    `anticipated best` configuration's headline technique. *)

open Spt_ir

type policy = {
  min_body_size : int;  (** unroll until the body reaches this size *)
  max_factor : int;
  unroll_while : bool;
}

val default_policy : policy

(** Static body size in elementary operations. *)
val loop_body_size : Ir.func -> Loops.loop -> int

(** Unroll [l] by [factor >= 2].  The function must not be in SSA form.
    @raise Invalid_argument on SSA input or factor < 2. *)
val unroll_loop : Ir.func -> Loops.loop -> factor:int -> unit

(** Factor chosen by [policy] for this loop; 1 = leave alone. *)
val factor_for : Ir.func -> Loops.loop -> policy -> int

(** Unroll every eligible innermost loop; returns how many. *)
val run : Ir.func -> policy -> int
