/* A record-decode scan whose cursor advances by a data-dependent but
 * almost-constant stride: software value prediction territory.
 *   dune exec bin/sptc.exe -- compile examples/src/scan.c -c best
 */
int n = 40000;
int data[40000];
int out[40000];
int checksum;

void main() {
  int i;
  srand(2026);
  for (i = 0; i < n; i = i + 1) { data[i] = rand() & 4095; }
  int pos = 0;
  int emitted = 0;
  while (pos < n - 16) {
    int v = data[pos] * 3 + data[pos + 1] * 5 + data[pos + 2] * 7;
    int w = data[pos + 3] * 11 + data[pos + 4] * 13 + data[pos + 5];
    int u = (v ^ w) + (v >> 3) + (w >> 5) + data[pos + 6] + data[pos + 7];
    int q = u * 3 + v * w + (u & 255) + (v % 97) + (w % 89);
    out[emitted & 32767] = v + w + u + q;
    emitted = emitted + 1;
    int step = 2;
    if ((q & 2047) == 3) { step = 5; }
    pos = pos + step;
  }
  checksum = emitted;
  print_int(checksum);
}
