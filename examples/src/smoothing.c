/* A smoothing kernel: the classic SPT-friendly loop.  Try:
 *   dune exec bin/sptc.exe -- loops examples/src/smoothing.c
 *   dune exec bin/sptc.exe -- compile examples/src/smoothing.c -c best
 */
int n = 20000;
int prices[20000];
int smoothed[20000];
int checksum;

void main() {
  int i;
  srand(7);
  for (i = 0; i < n; i = i + 1) { prices[i] = 1000 + (rand() & 255); }
  for (i = 2; i < n - 2; i = i + 1) {
    smoothed[i] =
      (prices[i - 2] + prices[i - 1] * 3 + prices[i] * 4 + prices[i + 1] * 3
      + prices[i + 2]) / 12;
  }
  int peak = 0;
  for (i = 0; i < n; i = i + 1) {
    if (smoothed[i] > peak) { peak = smoothed[i]; }
  }
  checksum = peak + smoothed[n / 2];
  print_int(checksum);
}
