/* A scatter-update loop: certain conflict under type-based aliasing,
 * rare conflict under dependence profiling.  Compare:
 *   dune exec bin/sptc.exe -- compile examples/src/histogram.c -c basic
 *   dune exec bin/sptc.exe -- compile examples/src/histogram.c -c best
 */
int n = 30000;
int table[8192];
int keys[30000];
int checksum;

void main() {
  int i;
  srand(99);
  for (i = 0; i < n; i = i + 1) { keys[i] = rand() & 8191; }
  for (i = 0; i < 8192; i = i + 1) { table[i] = i; }
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int k = keys[i];
    int v = table[k];
    table[k] = v * 2 + (k & 7) + 1;
    acc = acc + (v & 15);
  }
  checksum = acc + table[0] + table[8191];
  print_int(checksum);
}
