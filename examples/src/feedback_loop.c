/* A workload built to make the static cost model mispredict — the
 * profile-guided feedback demo (sptc adapt / --profile-in).
 *
 * Two conditional stores into the region `carry` each fire on 1/8 of
 * the iterations, so the compiler prices each violation candidate at
 * p = 0.125 and selects the loop (predicted misspeculation cost just
 * under the 0.12 * body threshold).  At run time both cells are read
 * by EVERY iteration, so the region as a whole goes stale on ~2/8 of
 * the speculative tasks: the observed per-region kill rate is about
 * twice the per-candidate prediction.  Feeding that telemetry back
 * (sptc adapt, or run --feedback-out then compile --profile-in)
 * lifts both candidates to the observed rate, the corrected cost
 * crosses the threshold, and the recompile rejects the loop — after
 * which the misspeculation disappears.
 *
 *   dune exec bin/sptc.exe -- adapt examples/src/feedback_loop.c
 */
int n = 4000;
int data[4096];
int outa[4096];
int outb[4096];
int outc[4096];
int carry[4];
int checksum;

void main() {
  int i;
  srand(41);
  for (i = 0; i < 4096; i = i + 1) { data[i] = rand() & 1023; }
  carry[0] = 3;
  carry[1] = 5;
  carry[2] = 7;
  for (i = 0; i < n; i = i + 1) {
    /* chain A: reads carry[0] on every iteration */
    int a0 = carry[0];
    int a1 = data[i] + a0;
    int a2 = a1 * 3 + (a1 >> 2);
    int a3 = a2 * 5 + (a2 & 255);
    int a4 = a3 % 97 + (a3 >> 3);
    int a5 = a4 * 7 + (a4 & 63);
    int a6 = a5 * 3 + (a5 >> 2) + (a4 & 31);
    outa[i] = a6;
    if ((i & 7) == 0) {
      carry[0] = (a6 & 15) + 1;   /* rare store, long closure */
    }
    /* chain B: reads carry[1] on every iteration */
    int b0 = carry[1];
    int b1 = data[(i + 9) & 4095] + b0;
    int b2 = b1 * 3 + (b1 >> 1);
    int b3 = b2 * 5 + (b2 & 127);
    int b4 = b3 % 89 + (b3 >> 4);
    int b5 = b4 * 7 + (b4 & 95);
    int b6 = b5 * 3 + (b5 >> 3) + (b4 & 7);
    outb[i] = b6;
    if ((i & 7) == 2) {
      carry[1] = (b6 & 31) + 2;   /* second rare store, same region */
    }
    /* chain C: reads carry[2] on every iteration */
    int c0 = carry[2];
    int c1 = data[(i + 17) & 4095] + c0;
    int c2 = c1 * 3 + (c1 >> 2);
    int c3 = c2 * 5 + (c2 & 63);
    int c4 = c3 % 83 + (c3 >> 5);
    int c5 = c4 * 7 + (c4 & 47);
    int c6 = c5 * 3 + (c5 >> 1) + (c4 & 3);
    outc[i] = c6;
    if ((i & 7) == 4) {
      carry[2] = (c6 & 63) + 3;   /* third rare store, same region */
    }
  }
  checksum = carry[0] + carry[1] + carry[2] + outa[7] + outb[n - 1] + outc[11];
  print_int(checksum);
}
